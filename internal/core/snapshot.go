package core

import (
	"sort"

	"dare/internal/dfs"
	"dare/internal/policy"
	"dare/internal/snapshot"
	"dare/internal/topology"
)

// addStats folds a policy's activity counters.
func addStats(h *snapshot.Hash, s PolicyStats) {
	h.I64(s.ReplicasCreated)
	h.I64(s.Evictions)
	h.I64(s.RemoteSkipped)
	h.I64(s.Refreshes)
}

// addRules folds the mutable state of a compiled rule set (RNG positions,
// window times, bandit arms) via policy.AddRuleState.
func addRules(h *snapshot.Hash, r policy.ReplicationRules) {
	for _, rule := range []policy.Rule{r.Admit, r.Victim, r.Aged} {
		if rule == nil {
			h.Str("nil")
			continue
		}
		policy.AddRuleState(h, rule)
	}
}

// addState folds one node policy's tracked-replica structure and rule
// state. Each implementation folds its entries in its own native order —
// LRU list order, ElephantTrap ring order with the eviction-pointer
// offset, LFU heap-array order — because that order IS policy state: two
// runs whose structures hold the same set in a different order make
// different future decisions.
func addPolicyState(h *snapshot.Hash, np NodePolicy) {
	switch p := np.(type) {
	case *nonePolicy:
		h.Str("vanilla")
		addStats(h, p.stats)
	case *GreedyLRU:
		h.Str("lru")
		h.I64(p.budget)
		h.I64(p.used)
		for el := p.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*lruEntry)
			h.I64(int64(e.block))
			h.I64(int64(e.file))
			h.I64(e.size)
		}
		addRules(h, p.rules)
		addStats(h, p.stats)
	case *GreedyLFU:
		h.Str("lfu")
		h.I64(p.budget)
		h.I64(p.used)
		h.U64(p.seq)
		for _, e := range p.pq {
			h.I64(int64(e.block))
			h.I64(int64(e.file))
			h.I64(e.size)
			h.I64(e.count)
			h.U64(e.seq)
		}
		addRules(h, p.rules)
		addStats(h, p.stats)
	case *ElephantTrap:
		h.Str("elephanttrap")
		h.I64(p.budget)
		h.I64(p.used)
		evictIdx := -1
		i := 0
		for el := p.ring.Front(); el != nil; el = el.Next() {
			e := el.Value.(*etEntry)
			h.I64(int64(e.block))
			h.I64(int64(e.file))
			h.I64(e.size)
			h.I64(e.count)
			if el == p.evict {
				evictIdx = i
			}
			i++
		}
		h.Int(evictIdx)
		addRules(h, p.rules)
		addStats(h, p.stats)
	default:
		h.Str("opaque")
	}
}

// AddState folds the DARE manager into t: every node policy's tracked set
// and rule state, plus the announce/evict operations still in flight
// (pending adds not yet delivered by heartbeat).
func (m *Manager) AddState(t *snapshot.StateTable) {
	ph := snapshot.NewHash()
	for _, p := range m.policies {
		addPolicyState(ph, p)
	}
	t.Add("core.policies", ph.Sum())

	qh := snapshot.NewHash()
	var blocks []dfs.BlockID
	for node, pend := range m.pending {
		qh.Int(node)
		blocks = blocks[:0]
		for b := range pend {
			blocks = append(blocks, b)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		qh.Int(len(blocks))
		for _, b := range blocks {
			qh.I64(int64(b))
			qh.Bool(pend[b].canceled)
		}
	}
	qh.Int(len(m.errs))
	t.Add("core.pending", qh.Sum())
}

// AddState folds the Scarlett controller into t: epoch access tallies,
// the placed-replica plan, budget position, and the grow gate's state.
func (s *Scarlett) AddState(t *snapshot.StateTable) {
	h := snapshot.NewHash()
	h.I64(s.budget)
	h.I64(s.used)
	h.I64(s.extraNetworkBytes)
	h.Bool(s.stopped)

	files := make([]dfs.FileID, 0, len(s.accesses))
	for f := range s.accesses {
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })
	h.Int(len(files))
	for _, f := range files {
		h.I64(int64(f))
		h.I64(s.accesses[f])
	}

	blocks := make([]dfs.BlockID, 0, len(s.placed))
	for b := range s.placed {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	h.Int(len(blocks))
	var nodes []topology.NodeID
	for _, b := range blocks {
		h.I64(int64(b))
		nodes = nodes[:0]
		for n := range s.placed[b] {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		h.Int(len(nodes))
		for _, n := range nodes {
			h.Int(int(n))
		}
	}

	if s.grow != nil {
		policy.AddRuleState(h, s.grow)
	}
	addStats(h, s.stats)
	h.Int(len(s.errs))
	t.Add("core.scarlett", h.Sum())
}
