package core

import (
	"container/list"

	"dare/internal/dfs"
	"dare/internal/policy"
)

// lruEntry is one dynamically replicated block in LRU order.
type lruEntry struct {
	block dfs.BlockID
	file  dfs.FileID
	size  int64
}

// GreedyLRU implements the paper's Algorithm 1: every non-data-local map
// task triggers a replication of its input block; when the replication
// budget would be exceeded, least-recently-used dynamic replicas are
// marked for (lazy) deletion, skipping victims that belong to the same
// file as the incoming block (same file ⇒ same popularity, so evicting it
// would thrash). The usage-order queue is refreshed on every read: blocks
// are inserted at the tail and evicted from the front.
type GreedyLRU struct {
	budget int64
	used   int64
	// order holds *lruEntry with the LRU victim at the front.
	order *list.List
	index map[dfs.BlockID]*list.Element
	// rules hold the declarative decisions: Admit gates capturing an
	// untracked remote read (built-in: allow), Victim gates each eviction
	// candidate (built-in: same_file == 0). The LRU ordering itself stays
	// in the native list.
	rules policy.ReplicationRules
	ctx   replCtx
	now   clock
	stats PolicyStats
}

// NewGreedyLRU creates the Algorithm 1 policy with the given budget in
// bytes and the built-in rule set. A non-positive budget disables
// replication entirely (every insertion would overflow it).
func NewGreedyLRU(budgetBytes int64) *GreedyLRU {
	return NewGreedyLRUWith(budgetBytes, compileBuiltinRules(GreedyLRUPolicy, 0, 0, nil), nil)
}

// NewGreedyLRUWith creates the policy with compiled decision rules; nil
// rule fields fall back to the built-ins. now supplies the simulated
// clock to time-aware rules (nil reads as 0).
func NewGreedyLRUWith(budgetBytes int64, rules policy.ReplicationRules, now clock) *GreedyLRU {
	builtin := compileBuiltinRules(GreedyLRUPolicy, 0, 0, nil)
	if rules.Admit == nil {
		rules.Admit = builtin.Admit
	}
	if rules.Victim == nil {
		rules.Victim = builtin.Victim
	}
	return &GreedyLRU{
		budget: budgetBytes,
		order:  list.New(),
		index:  make(map[dfs.BlockID]*list.Element),
		rules:  rules,
		now:    now,
	}
}

// Kind implements NodePolicy.
func (p *GreedyLRU) Kind() PolicyKind { return GreedyLRUPolicy }

// BudgetBytes implements NodePolicy.
func (p *GreedyLRU) BudgetBytes() int64 { return p.budget }

// UsedBytes implements NodePolicy.
func (p *GreedyLRU) UsedBytes() int64 { return p.used }

// Stats implements NodePolicy.
func (p *GreedyLRU) Stats() PolicyStats { return p.stats }

// Contains implements NodePolicy.
func (p *GreedyLRU) Contains(b dfs.BlockID) bool {
	_, ok := p.index[b]
	return ok
}

// Len reports the number of tracked dynamic replicas.
func (p *GreedyLRU) Len() int { return p.order.Len() }

// OnMapTask implements NodePolicy (Algorithm 1).
func (p *GreedyLRU) OnMapTask(b dfs.BlockID, f dfs.FileID, size int64, local bool) Decision {
	if local {
		// The queue is refreshed on every read: move to most-recent end.
		if el, ok := p.index[b]; ok {
			p.order.MoveToBack(el)
			p.stats.Refreshes++
		}
		return Decision{}
	}
	if p.Contains(b) {
		// Already replicated here but the task read remotely anyway (e.g.
		// the local copy is still being written): refresh, and count the
		// remote read that was not captured as a new replica.
		p.order.MoveToBack(p.index[b])
		p.stats.Refreshes++
		p.stats.RemoteSkipped++
		return Decision{}
	}
	// The admission rule decides whether to capture this remote read
	// (built-in: always — the greedy in GreedyLRU), evicting victims
	// until the budget accommodates the incoming block.
	p.ctx.admit(local, size, p.used, p.budget, p.now.read())
	if !p.rules.Admit.Eval(&p.ctx) {
		p.stats.RemoteSkipped++
		return Decision{}
	}
	var evict []dfs.BlockID
	for p.used+size > p.budget {
		victim := p.popVictim(f)
		if victim == nil {
			// Could not make room (budget too small, or every remaining
			// victim shares the incoming block's file): skip this
			// replication. Victims already popped stay evicted — they were
			// the least recently used regardless.
			p.stats.RemoteSkipped++
			p.stats.Evictions += int64(len(evict))
			return Decision{Evict: evict}
		}
		evict = append(evict, victim.block)
		p.used -= victim.size
	}
	p.stats.Evictions += int64(len(evict))
	p.index[b] = p.order.PushBack(&lruEntry{block: b, file: f, size: size})
	p.used += size
	p.stats.ReplicasCreated++
	return Decision{Replicate: true, Evict: evict}
}

// popVictim removes and returns the least recently used entry the Victim
// rule accepts, or nil when none exists. Rejected entries (built-in:
// those sharing evictingFile — same file ⇒ same popularity, evicting
// would thrash) are skipped in place, preserving their relative order
// (Algorithm 1's "continue" without removal).
func (p *GreedyLRU) popVictim(evictingFile dfs.FileID) *lruEntry {
	for el := p.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		p.ctx.candidate(0, false)
		p.ctx.sameFileIs(e.file == evictingFile)
		if !p.rules.Victim.Eval(&p.ctx) {
			continue
		}
		p.order.Remove(el)
		delete(p.index, e.block)
		return e
	}
	return nil
}
