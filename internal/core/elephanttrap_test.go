package core

import (
	"testing"
	"testing/quick"

	"dare/internal/dfs"
	"dare/internal/stats"
)

func newET(p float64, threshold, budget int64, seed uint64) *ElephantTrap {
	return NewElephantTrap(p, threshold, budget, stats.NewRNG(seed))
}

func TestElephantTrapSamplingProbability(t *testing.T) {
	// With p = 0.3, about 30% of remote reads are captured while the
	// budget is unconstrained.
	et := newET(0.3, 1, 1<<40, 1)
	const n = 20000
	for i := 0; i < n; i++ {
		et.OnMapTask(dfs.BlockID(i), dfs.FileID(i), 100, false)
	}
	rate := float64(et.Stats().ReplicasCreated) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("capture rate %v, want ~0.3", rate)
	}
}

func TestElephantTrapPOneCapturesAll(t *testing.T) {
	et := newET(1, 1, 1<<40, 2)
	for i := 0; i < 100; i++ {
		d := et.OnMapTask(dfs.BlockID(i), dfs.FileID(i), 100, false)
		if !d.Replicate {
			t.Fatal("p=1 must capture every remote read with free budget")
		}
	}
}

func TestElephantTrapPZeroCapturesNothing(t *testing.T) {
	et := newET(0, 1, 1<<40, 3)
	for i := 0; i < 100; i++ {
		if d := et.OnMapTask(dfs.BlockID(i), dfs.FileID(i), 100, false); d.Replicate {
			t.Fatal("p=0 must never replicate")
		}
	}
	if et.Stats().RemoteSkipped != 100 {
		t.Fatalf("skips %d", et.Stats().RemoteSkipped)
	}
}

func TestElephantTrapLocalHitIncrementsCount(t *testing.T) {
	et := newET(1, 1, 1<<40, 4)
	et.OnMapTask(7, 1, 100, false) // insert, count 0
	if c, ok := et.Count(7); !ok || c != 0 {
		t.Fatalf("initial count %d ok=%v", c, ok)
	}
	et.OnMapTask(7, 1, 100, true)
	et.OnMapTask(7, 1, 100, true)
	if c, _ := et.Count(7); c != 2 {
		t.Fatalf("count %d, want 2", c)
	}
	if et.Stats().Refreshes != 2 {
		t.Fatal("refreshes not counted")
	}
}

func TestElephantTrapLocalHitOfUntrackedBlockIgnored(t *testing.T) {
	et := newET(1, 1, 1<<40, 5)
	et.OnMapTask(7, 1, 100, true) // not tracked: primary-replica local read
	if et.Len() != 0 || et.Stats().Refreshes != 0 {
		t.Fatal("untracked local read must not create state")
	}
}

func TestElephantTrapEvictsColdBlock(t *testing.T) {
	et := newET(1, 1, 300, 6)
	et.OnMapTask(1, 10, 100, false)
	et.OnMapTask(2, 20, 100, false)
	et.OnMapTask(3, 30, 100, false)
	// All counts are 0 < threshold 1: the block at the eviction pointer
	// (front, block 1) is the victim.
	d := et.OnMapTask(4, 40, 100, false)
	if !d.Replicate || len(d.Evict) != 1 {
		t.Fatalf("expected one eviction, got %+v", d)
	}
	if d.Evict[0] != 1 {
		t.Fatalf("victim %d, want 1 (eviction pointer start)", d.Evict[0])
	}
	if et.UsedBytes() != 300 {
		t.Fatalf("used %d", et.UsedBytes())
	}
}

func TestElephantTrapAgingHalvesCounts(t *testing.T) {
	et := newET(1, 1, 200, 7)
	et.OnMapTask(1, 10, 100, false)
	et.OnMapTask(2, 20, 100, false)
	// Pump block 1's count to 3 via local hits.
	for i := 0; i < 3; i++ {
		et.OnMapTask(1, 10, 100, true)
	}
	// Insert block 3: scan starts at 1 (count 3 >= 1, halve to 1, advance),
	// then 2 (count 0 < 1): 2 is the victim.
	d := et.OnMapTask(3, 30, 100, false)
	if len(d.Evict) != 1 || d.Evict[0] != 2 {
		t.Fatalf("expected eviction of 2, got %+v", d)
	}
	if c, _ := et.Count(1); c != 1 {
		t.Fatalf("block 1 count %d after halving, want 1", c)
	}
}

func TestElephantTrapHotRingAbandonsReplication(t *testing.T) {
	// Every tracked block is too hot (count >= threshold even after one
	// halving pass): markBlockForDeletion returns nil, no replication.
	et := newET(1, 1, 200, 8)
	et.OnMapTask(1, 10, 100, false)
	et.OnMapTask(2, 20, 100, false)
	for i := 0; i < 8; i++ {
		et.OnMapTask(1, 10, 100, true)
		et.OnMapTask(2, 20, 100, true)
	}
	d := et.OnMapTask(3, 30, 100, false)
	if d.Replicate {
		t.Fatal("hot ring must abandon replication")
	}
	if et.Len() != 2 {
		t.Fatal("hot blocks must survive")
	}
	// Counts were halved during the failed sweep (competitive aging).
	c1, _ := et.Count(1)
	c2, _ := et.Count(2)
	if c1 != 4 || c2 != 4 {
		t.Fatalf("counts after sweep %d,%d; want 4,4", c1, c2)
	}
}

func TestElephantTrapSameFileVictimAbandons(t *testing.T) {
	et := newET(1, 1, 100, 9)
	et.OnMapTask(1, 10, 100, false)
	// Incoming block of the same file 10: victim (block 1) shares the
	// file, so the algorithm returns null and does not replicate.
	d := et.OnMapTask(2, 10, 100, false)
	if d.Replicate || len(d.Evict) != 0 {
		t.Fatalf("same-file victim must abandon, got %+v", d)
	}
	if !et.Contains(1) {
		t.Fatal("block 1 must survive")
	}
}

func TestElephantTrapRemoteReadOfTrackedBlockCounts(t *testing.T) {
	et := newET(1, 1, 1000, 10)
	et.OnMapTask(1, 10, 100, false)
	d := et.OnMapTask(1, 10, 100, false)
	if d.Replicate {
		t.Fatal("tracked block must not be re-replicated")
	}
	if c, _ := et.Count(1); c != 1 {
		t.Fatalf("count %d, want 1", c)
	}
}

func TestElephantTrapCountsNeverNegativeProperty(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		et := newET(0.7, 2, 800, seed)
		for _, op := range ops {
			b := dfs.BlockID(op % 30)
			fid := dfs.FileID(op % 5)
			et.OnMapTask(b, fid, 100, op%2 == 0)
			if c, ok := et.Count(b); ok && c < 0 {
				return false
			}
			if et.UsedBytes() > et.BudgetBytes() || et.UsedBytes() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestElephantTrapTracksUsedBytesExactly(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		et := newET(0.5, 1, 600, seed)
		sizes := map[dfs.BlockID]int64{}
		for _, op := range ops {
			b := dfs.BlockID(op % 40)
			fid := dfs.FileID(op % 6)
			size := int64(op%3)*100 + 100
			d := et.OnMapTask(b, fid, size, op%4 == 0)
			if d.Replicate {
				sizes[b] = size
			}
			for _, v := range d.Evict {
				delete(sizes, v)
			}
		}
		var sum int64
		for _, s := range sizes {
			sum += s
		}
		return sum == et.UsedBytes() && et.Len() == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestElephantTrapParamClamping(t *testing.T) {
	et := NewElephantTrap(-0.5, -3, 100, stats.NewRNG(1))
	if d := et.OnMapTask(1, 1, 50, false); d.Replicate {
		t.Fatal("clamped p=0 must not replicate")
	}
	et2 := NewElephantTrap(1.5, 1, 100, stats.NewRNG(1))
	if d := et2.OnMapTask(1, 1, 50, false); !d.Replicate {
		t.Fatal("clamped p=1 must replicate")
	}
}

func TestElephantTrapInsertBeforeEvictionPointer(t *testing.T) {
	// After an eviction established a pointer, a new insertion goes right
	// before the pointer, making it the last examined in the next sweep.
	et := newET(1, 1, 200, 11)
	et.OnMapTask(1, 10, 100, false)
	et.OnMapTask(2, 20, 100, false)
	et.OnMapTask(3, 30, 100, false) // evicts 1, pointer now at 2
	// Heat up 2 and 3 is cold; insert 4 -> sweep from pointer.
	et.OnMapTask(2, 20, 100, true)
	d := et.OnMapTask(4, 40, 100, false)
	// Sweep: 2 has count 1 >= 1 -> halve to 0, advance; 3 count 0 -> victim.
	if len(d.Evict) != 1 || d.Evict[0] != 3 {
		t.Fatalf("expected eviction of 3, got %+v", d)
	}
}

func TestPolicyKindString(t *testing.T) {
	if NonePolicy.String() != "vanilla" || GreedyLRUPolicy.String() != "lru" || ElephantTrapPolicy.String() != "elephanttrap" {
		t.Fatal("PolicyKind strings wrong")
	}
	for _, s := range []string{"vanilla", "none", "off", "lru", "greedy", "elephanttrap", "et", "probabilistic"} {
		if _, err := ParsePolicyKind(s); err != nil {
			t.Errorf("ParsePolicyKind(%q): %v", s, err)
		}
	}
	if _, err := ParsePolicyKind("bogus"); err == nil {
		t.Fatal("bogus policy must fail to parse")
	}
}

func TestNonePolicy(t *testing.T) {
	p := NewNonePolicy()
	d := p.OnMapTask(1, 1, 100, false)
	if d.Replicate || len(d.Evict) != 0 {
		t.Fatal("none policy must do nothing")
	}
	if p.Contains(1) || p.UsedBytes() != 0 || p.BudgetBytes() != 0 {
		t.Fatal("none policy must hold no state")
	}
	if p.Stats().RemoteSkipped != 1 {
		t.Fatal("remote skip should be counted")
	}
	if p.Kind() != NonePolicy {
		t.Fatal("kind mismatch")
	}
}
