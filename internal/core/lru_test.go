package core

import (
	"testing"
	"testing/quick"

	"dare/internal/dfs"
)

func TestGreedyLRUReplicatesRemoteReads(t *testing.T) {
	p := NewGreedyLRU(1000)
	d := p.OnMapTask(1, 10, 100, false)
	if !d.Replicate || len(d.Evict) != 0 {
		t.Fatalf("expected plain replication, got %+v", d)
	}
	if !p.Contains(1) || p.UsedBytes() != 100 {
		t.Fatal("state not updated")
	}
	if p.Stats().ReplicasCreated != 1 {
		t.Fatal("stats not updated")
	}
}

func TestGreedyLRUIgnoresLocalReads(t *testing.T) {
	p := NewGreedyLRU(1000)
	d := p.OnMapTask(1, 10, 100, true)
	if d.Replicate || p.Contains(1) {
		t.Fatal("local read must not replicate")
	}
}

func TestGreedyLRUEvictsLeastRecentlyUsed(t *testing.T) {
	p := NewGreedyLRU(300)
	p.OnMapTask(1, 10, 100, false)
	p.OnMapTask(2, 20, 100, false)
	p.OnMapTask(3, 30, 100, false)
	// Budget full. Block 1 is LRU; inserting 4 must evict 1.
	d := p.OnMapTask(4, 40, 100, false)
	if !d.Replicate || len(d.Evict) != 1 || d.Evict[0] != 1 {
		t.Fatalf("expected eviction of block 1, got %+v", d)
	}
	if p.Contains(1) || !p.Contains(4) {
		t.Fatal("victim still tracked or new block missing")
	}
	if p.UsedBytes() != 300 {
		t.Fatalf("used %d, want 300", p.UsedBytes())
	}
}

func TestGreedyLRURefreshChangesVictim(t *testing.T) {
	p := NewGreedyLRU(300)
	p.OnMapTask(1, 10, 100, false)
	p.OnMapTask(2, 20, 100, false)
	p.OnMapTask(3, 30, 100, false)
	// Local read of block 1 refreshes it; block 2 becomes LRU.
	p.OnMapTask(1, 10, 100, true)
	d := p.OnMapTask(4, 40, 100, false)
	if len(d.Evict) != 1 || d.Evict[0] != 2 {
		t.Fatalf("expected eviction of block 2 after refresh, got %+v", d)
	}
	if p.Stats().Refreshes != 1 {
		t.Fatal("refresh not counted")
	}
}

func TestGreedyLRUSkipsSameFileVictims(t *testing.T) {
	p := NewGreedyLRU(200)
	p.OnMapTask(1, 10, 100, false)
	p.OnMapTask(2, 10, 100, false)
	// Budget full with two blocks of file 10. Incoming block of file 10
	// must not evict same-file victims: replication is abandoned.
	d := p.OnMapTask(3, 10, 100, false)
	if d.Replicate {
		t.Fatal("replication should be abandoned when all victims share the file")
	}
	if p.Stats().RemoteSkipped != 1 {
		t.Fatal("skip not counted")
	}
	// A block of a different file evicts the LRU (block 1).
	d = p.OnMapTask(4, 20, 100, false)
	if !d.Replicate || len(d.Evict) != 1 || d.Evict[0] != 1 {
		t.Fatalf("expected eviction of block 1, got %+v", d)
	}
}

func TestGreedyLRUSameFileSkippedInPlace(t *testing.T) {
	// Victim scan must skip same-file entries without evicting them.
	p := NewGreedyLRU(300)
	p.OnMapTask(1, 10, 100, false) // same file as incoming
	p.OnMapTask(2, 20, 100, false)
	p.OnMapTask(3, 30, 100, false)
	d := p.OnMapTask(4, 10, 100, false)
	if !d.Replicate || len(d.Evict) != 1 || d.Evict[0] != 2 {
		t.Fatalf("expected skip of same-file LRU then eviction of 2, got %+v", d)
	}
	if !p.Contains(1) {
		t.Fatal("same-file block 1 must survive the scan")
	}
}

func TestGreedyLRUZeroBudgetNeverReplicates(t *testing.T) {
	p := NewGreedyLRU(0)
	for i := 0; i < 10; i++ {
		d := p.OnMapTask(dfs.BlockID(i), dfs.FileID(i), 100, false)
		if d.Replicate {
			t.Fatal("zero budget must not replicate")
		}
	}
	if p.Stats().RemoteSkipped != 10 {
		t.Fatalf("skips %d", p.Stats().RemoteSkipped)
	}
}

func TestGreedyLRURemoteReadOfTrackedBlockRefreshes(t *testing.T) {
	p := NewGreedyLRU(500)
	p.OnMapTask(1, 10, 100, false)
	p.OnMapTask(2, 20, 100, false)
	// Remote read of already-tracked block 1: refresh, not duplicate.
	d := p.OnMapTask(1, 10, 100, false)
	if d.Replicate {
		t.Fatal("tracked block must not be re-replicated")
	}
	if p.UsedBytes() != 200 || p.Len() != 2 {
		t.Fatal("duplicate insertion corrupted state")
	}
	// Block 2 is now LRU.
	p2 := NewGreedyLRU(200)
	p2.OnMapTask(1, 10, 100, false)
	p2.OnMapTask(2, 20, 100, false)
	p2.OnMapTask(1, 10, 100, false) // refresh 1
	d = p2.OnMapTask(3, 30, 100, false)
	if len(d.Evict) != 1 || d.Evict[0] != 2 {
		t.Fatalf("expected eviction of 2, got %+v", d)
	}
}

func TestGreedyLRUBudgetInvariantProperty(t *testing.T) {
	// Under any operation sequence, used <= budget and used equals the sum
	// of tracked block sizes.
	f := func(ops []uint16) bool {
		p := NewGreedyLRU(1000)
		sizes := map[dfs.BlockID]int64{}
		for _, op := range ops {
			b := dfs.BlockID(op % 50)
			fid := dfs.FileID(op % 7)
			size := int64(op%4)*50 + 50
			local := op%3 == 0
			d := p.OnMapTask(b, fid, size, local)
			if d.Replicate {
				sizes[b] = size
			}
			for _, v := range d.Evict {
				delete(sizes, v)
			}
			if p.UsedBytes() > p.BudgetBytes() {
				return false
			}
			var sum int64
			for _, s := range sizes {
				sum += s
			}
			if sum != p.UsedBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
