package core

import (
	"errors"
	"fmt"

	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/policy"
	"dare/internal/stats"
	"dare/internal/topology"
)

// Config selects and parameterizes the DARE policy for a cluster run.
// The defaults mirror the paper's headline configuration (§V, Fig. 7):
// ElephantTrap with p = 0.3, threshold = 1, budget = 0.2.
type Config struct {
	Kind PolicyKind
	// P is the ElephantTrap sampling probability.
	P float64
	// Threshold is the ElephantTrap aging threshold.
	Threshold int64
	// BudgetFraction bounds dynamic-replica storage as a fraction of the
	// cluster's average per-node primary bytes (§IV: "a value between 10%
	// and 20% is reasonable").
	BudgetFraction float64
	// AnnounceDelay is the seconds between a replication decision and the
	// name node learning about the new replica (it is piggybacked on the
	// next heartbeat, §IV-B).
	AnnounceDelay float64
	// LazyDeleteDelay is the seconds between marking a victim and its
	// actual removal ("blocks marked for deletion are lazily removed to
	// avoid conflicting with other operations", §IV-B).
	LazyDeleteDelay float64

	// Scarlett-only knobs (ignored by the DARE policies): the epoch
	// length in seconds, the accesses-per-extra-replica quota, and the
	// cap on extra replicas per block.
	Epoch              float64
	AccessesPerReplica float64
	MaxExtraReplicas   int

	// Rules optionally overrides the kind's built-in decision rules
	// (loaded from a -policy-file config). Non-nil fields replace the
	// corresponding built-in: Admit gates replication admission (for
	// Scarlett, the epoch grow gate), Victim and Aged gate eviction
	// candidates. Nil means the kind's historical hard-coded behavior,
	// which the built-in rule sets reproduce decision for decision.
	Rules *policy.RuleSet
}

// DefaultConfig returns the paper's headline DARE configuration.
func DefaultConfig() Config {
	return Config{
		Kind:            ElephantTrapPolicy,
		P:               0.3,
		Threshold:       1,
		BudgetFraction:  0.2,
		AnnounceDelay:   1.0,
		LazyDeleteDelay: 1.0,
	}
}

// MetaStore is the slice of the name node the Manager needs. *dfs.NameNode
// implements it.
type MetaStore interface {
	HasReplica(b dfs.BlockID, node topology.NodeID) bool
	AddDynamicReplica(b dfs.BlockID, node topology.NodeID) error
	RemoveDynamicReplica(b dfs.BlockID, node topology.NodeID) error
	TotalPrimaryBytes() int64
	N() int
}

// DeferFunc schedules fn to run after delay seconds of simulated time.
// The simulation engine's Schedule method has this shape.
type DeferFunc func(delay float64, fn func())

// pendingAdd tracks a replica created locally but not yet announced to the
// name node; an eviction arriving before the announce simply cancels it.
type pendingAdd struct{ canceled bool }

// Manager instantiates one NodePolicy per data node and applies their
// decisions to the name node, modelling the heartbeat announce delay and
// lazy deletion. It is the component a modified Hadoop DataNode would
// embed (the paper's 228-line patch, §V-A).
type Manager struct {
	cfg      Config
	store    MetaStore
	policies []NodePolicy
	deferFn  DeferFunc
	// tagDefer, when set (SetTagDefer), replaces deferFn with a scheduler
	// that records a serializable tag alongside the deferred closure, so
	// in-flight announces/evictions survive a state-image checkpoint.
	tagDefer TagDeferFunc
	pending  []map[dfs.BlockID]*pendingAdd
	now      func() float64
	// errs records unexpected metadata failures; a correct run has none.
	errs []error
}

// NewManager builds per-node policies for every data node in store. The
// per-node budget is BudgetFraction × (total primary bytes / nodes),
// computed from the store's current contents — create the input files
// before the manager. rng seeds the per-node probabilistic policies:
// node i's rule set compiles against rng.Split(i+1), and the first
// stateful rule in the set (ElephantTrap's sampling coin) consumes that
// stream directly — the same stream, same draws, as the pre-rule
// implementation.
func NewManager(cfg Config, store MetaStore, rng *stats.RNG, deferFn DeferFunc) *Manager {
	n := store.N()
	m := &Manager{
		cfg:      cfg,
		store:    store,
		policies: make([]NodePolicy, n),
		deferFn:  deferFn,
		pending:  make([]map[dfs.BlockID]*pendingAdd, n),
	}
	budget := int64(cfg.BudgetFraction * float64(store.TotalPrimaryBytes()) / float64(n))
	merged := mergedRuleSet(cfg.Kind, cfg.P, cfg.Threshold, cfg.Rules)
	for i := 0; i < n; i++ {
		m.pending[i] = make(map[dfs.BlockID]*pendingAdd)
		rules, err := merged.CompileWith(rng.Split(uint64(i) + 1))
		if err != nil {
			// Config rules are validated at load time, so this is
			// defensive: record once and fall back to the built-ins.
			if i == 0 {
				m.errs = append(m.errs, fmt.Errorf("core: compile policy rules: %w", err))
			}
			rules = policy.ReplicationRules{}
		}
		switch cfg.Kind {
		case GreedyLRUPolicy:
			m.policies[i] = NewGreedyLRUWith(budget, rules, m.nowFn)
		case GreedyLFUPolicy:
			m.policies[i] = NewGreedyLFUWith(budget, rules, m.nowFn)
		case ElephantTrapPolicy:
			m.policies[i] = NewElephantTrapWith(cfg.P, cfg.Threshold, budget, rules, m.nowFn)
		default:
			m.policies[i] = NewNonePolicy()
		}
	}
	return m
}

// SetNow supplies the simulated clock to time-aware policy rules (the
// rate-window and bandit combinators). Decisions made before any SetNow
// read time 0.
func (m *Manager) SetNow(now func() float64) { m.now = now }

// nowFn is the clock handed to per-node policies; it indirects through
// m.now so SetNow works after construction.
func (m *Manager) nowFn() float64 {
	if m.now == nil {
		return 0
	}
	return m.now()
}

// Policy exposes the per-node policy (testing, introspection).
func (m *Manager) Policy(node topology.NodeID) NodePolicy { return m.policies[node] }

// Errors returns metadata failures observed while applying decisions.
func (m *Manager) Errors() []error { return m.errs }

// HandleEvent implements event.Subscriber: the manager reacts to map-task
// launches on the cluster bus (reduce launches carry Block = -1 and have
// no input block to replicate, so they are ignored).
func (m *Manager) HandleEvent(ev event.Event) {
	if ev.Kind != event.TaskLaunch || ev.Block < 0 {
		return
	}
	m.OnMapTask(topology.NodeID(ev.Node), dfs.BlockID(ev.Block), dfs.FileID(ev.File), ev.Aux, ev.Flag)
}

// OnMapTask reports to node's policy that a map task reading block b
// (size bytes, of file f) was scheduled there, with the given locality,
// and applies the resulting decision.
func (m *Manager) OnMapTask(node topology.NodeID, b dfs.BlockID, f dfs.FileID, size int64, local bool) {
	d := m.policies[node].OnMapTask(b, f, size, local)
	for _, victim := range d.Evict {
		m.evict(node, victim)
	}
	if d.Replicate {
		m.announce(node, b)
	}
}

// announce registers the new dynamic replica with the name node after the
// heartbeat delay, unless an eviction cancels it first.
func (m *Manager) announce(node topology.NodeID, b dfs.BlockID) {
	pa := &pendingAdd{}
	m.pending[node][b] = pa
	m.deferredTag(m.cfg.AnnounceDelay, announceTag{node: node, block: b, pa: pa},
		m.announceFn(node, b, pa))
}

// announceFn is the deferred announce body, split out so a state-image
// restore can rebuild the identical closure around a decoded pendingAdd.
func (m *Manager) announceFn(node topology.NodeID, b dfs.BlockID, pa *pendingAdd) func() {
	return func() {
		if pa.canceled {
			return
		}
		delete(m.pending[node], b)
		if m.store.HasReplica(b, node) {
			return // someone registered it meanwhile; nothing to do
		}
		if err := m.store.AddDynamicReplica(b, node); err != nil {
			if errors.Is(err, dfs.ErrNodeDown) {
				return // the node died with the replica; nothing to announce
			}
			if errors.Is(err, dfs.ErrMasterDown) {
				// The heartbeat carrying the announce got no answer. Real
				// DataNodes re-announce in the next full block report; here the
				// replica simply stays local-only (the policy already counts
				// it) and the post-recovery report path re-learns the disk.
				return
			}
			m.errs = append(m.errs, fmt.Errorf("core: announce block %d at node %d: %w", b, node, err))
		}
	}
}

// evict removes a dynamic replica after the lazy-deletion delay; if the
// replica was never announced, the pending announce is canceled instead.
func (m *Manager) evict(node topology.NodeID, b dfs.BlockID) {
	if pa, ok := m.pending[node][b]; ok {
		pa.canceled = true
		delete(m.pending[node], b)
		return
	}
	m.deferredTag(m.cfg.LazyDeleteDelay, evictTag{node: node, block: b}, m.evictFn(node, b))
}

// evictFn is the deferred lazy-delete body, split out so a state-image
// restore can rebuild the identical closure.
func (m *Manager) evictFn(node topology.NodeID, b dfs.BlockID) func() {
	return func() {
		if !m.store.HasReplica(b, node) {
			return // already gone
		}
		if err := m.store.RemoveDynamicReplica(b, node); err != nil {
			if errors.Is(err, dfs.ErrMasterDown) {
				// Lazy deletion proceeds on disk; the master never hearing
				// about a replica it will re-learn (or not) from block
				// reports is exactly the HDFS stale-replica case.
				return
			}
			m.errs = append(m.errs, fmt.Errorf("core: evict block %d at node %d: %w", b, node, err))
		}
	}
}

func (m *Manager) deferredTag(delay float64, tag EventTag, fn func()) {
	if delay <= 0 || (m.deferFn == nil && m.tagDefer == nil) {
		fn()
		return
	}
	if m.tagDefer != nil {
		m.tagDefer(delay, tag, fn)
		return
	}
	m.deferFn(delay, fn)
}

// TotalStats aggregates the per-node policy counters.
func (m *Manager) TotalStats() PolicyStats {
	var total PolicyStats
	for _, p := range m.policies {
		s := p.Stats()
		total.ReplicasCreated += s.ReplicasCreated
		total.Evictions += s.Evictions
		total.RemoteSkipped += s.RemoteSkipped
		total.Refreshes += s.Refreshes
	}
	return total
}

// UsedBytes reports the dynamic-replica bytes tracked across all nodes.
func (m *Manager) UsedBytes() int64 {
	var total int64
	for _, p := range m.policies {
		total += p.UsedBytes()
	}
	return total
}
