package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotRoundTrip feeds arbitrary bytes to Decode. The invariants:
// Decode never panics; when it accepts the input, re-encoding the decoded
// File reproduces the accepted bytes exactly (Encode∘Decode is a
// byte-level fixed point); when it rejects, the error is one of the typed
// snapshot classes.
func FuzzSnapshotRoundTrip(f *testing.F) {
	var valid bytes.Buffer
	sample := &File{Sections: []Section{
		{ID: "spec", Data: []byte(`{"seed":1}`)},
		{ID: "state", Data: []byte{0, 1, 2, 3}},
	}}
	if err := sample.Encode(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(valid.Bytes()[:valid.Len()/2])
	mut := append([]byte(nil), valid.Bytes()...)
	mut[len(mut)/2] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrVersion) && !errors.Is(err, ErrFormat) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		var re bytes.Buffer
		if err := dec.Encode(&re); err != nil {
			t.Fatalf("re-encode of accepted file failed: %v", err)
		}
		// Decode consumes exactly one container; the accepted prefix must
		// re-encode byte-identically.
		if !bytes.Equal(re.Bytes(), data[:re.Len()]) {
			t.Fatal("Encode(Decode(data)) differs from accepted input")
		}
	})
}

// FuzzStateTableDecode pins the same never-panic/typed-error contract for
// the state-table payload parser.
func FuzzStateTableDecode(f *testing.F) {
	tab := &StateTable{}
	tab.Add("sim.now", 42)
	tab.Add("dfs.registry", 0xFEEDFACE)
	f.Add(tab.Encode())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeStateTable(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFormat) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if !bytes.Equal(dec.Encode(), data) {
			t.Fatal("Encode(DecodeStateTable(data)) differs from input")
		}
	})
}
