package snapshot

import (
	"fmt"
	"math"
)

// Enc is the append-only binary encoder for state-image sections: fixed
// little-endian scalars and length-prefixed byte strings, no varints, no
// reflection. Every layer's EncodeState writes through one of these; the
// matching Dec reads fields back in the identical order. The format is
// deliberately dumb — a state image is verified against the fingerprint
// StateTable after decode, so the codec only needs to be deterministic
// and exact, not self-describing.
type Enc struct {
	buf []byte
}

// NewEnc returns an empty encoder.
func NewEnc() *Enc { return &Enc{} }

// Data returns the encoded bytes accumulated so far.
func (e *Enc) Data() []byte { return e.buf }

// Reset empties the encoder for reuse, keeping its buffer.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// Len reports the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Enc) U16(v uint16) {
	e.buf = append(e.buf, byte(v), byte(v>>8))
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends an int64 as its two's-complement uint64 image.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 as its IEEE-754 bit image — exact, including
// negative zero and NaN payloads.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends one byte, 0 or 1.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Str appends a u32 length prefix and the raw bytes of s.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a u32 length prefix and the raw bytes of b.
func (e *Enc) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Dec decodes a state-image section written by Enc. Errors are sticky:
// the first short read or bad length poisons the decoder, every later
// read returns zero values, and Err reports the defect — callers check
// once at the end instead of after every field.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Err reports the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining reports how many bytes are left to decode.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Finish reports the sticky error, or a format error when decoded fields
// did not consume the section exactly.
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes after state image", ErrFormat, len(d.buf)-d.off)
	}
	return nil
}

func (d *Dec) fail(n int) bool {
	if d.err != nil {
		return true
	}
	if len(d.buf)-d.off < n {
		d.err = fmt.Errorf("%w: state image needs %d bytes at offset %d, %d left",
			ErrTruncated, n, d.off, len(d.buf)-d.off)
		return true
	}
	return false
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	if d.fail(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U16 reads a little-endian uint16.
func (d *Dec) U16() uint16 {
	if d.fail(2) {
		return 0
	}
	b := d.buf[d.off:]
	d.off += 2
	return uint16(b[0]) | uint16(b[1])<<8
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	if d.fail(4) {
		return 0
	}
	b := d.buf[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	if d.fail(8) {
		return 0
	}
	b := d.buf[d.off:]
	d.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded by Enc.Int.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads a float64 bit image.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads one byte as a boolean; any nonzero byte is true.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// Count reads a u32 element count written before a repeated group and
// bounds it against the bytes actually left: each element occupies at
// least elemBytes bytes (clamped to >= 1), so a count that cannot fit in
// the section is a format error up front — not a multi-gigabyte decode
// loop over a corrupted field. Returns 0 after any error.
func (d *Dec) Count(elemBytes int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if n > d.Remaining()/elemBytes {
		d.err = fmt.Errorf("%w: state image claims %d elements of >= %d bytes with %d bytes left",
			ErrFormat, n, elemBytes, d.Remaining())
		return 0
	}
	return n
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.Blob()) }

// Blob reads a length-prefixed byte string. The returned slice aliases
// the decoder's buffer; copy it if it must outlive the section bytes.
func (d *Dec) Blob() []byte {
	n := int(d.U32())
	if d.err != nil || d.fail(n) {
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}
