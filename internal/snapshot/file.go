package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// PrevSuffix is appended to a checkpoint path to name the previous good
// checkpoint kept as the fallback generation.
const PrevSuffix = ".prev"

// WriteFile atomically replaces the checkpoint at path with f, keeping
// the previous generation at path+PrevSuffix. The new bytes are written
// to a temporary file and fsynced before any rename, so a crash at any
// instant leaves either the old chain or the new one — never a torn file
// under the final name:
//
//  1. write path.tmp (fsync)
//  2. rename path     -> path.prev   (keeps the last good generation)
//  3. rename path.tmp -> path
//
// A crash between 2 and 3 leaves no file at path; LoadFile falls back to
// path.prev.
func WriteFile(path string, f *File) error {
	tmp := path + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := f.Encode(out); err != nil {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+PrevSuffix); err != nil {
			os.Remove(tmp)
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the renames durable on filesystems that need a directory sync.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// LoadFile reads the checkpoint at path, falling back to path+PrevSuffix
// when the primary is missing, truncated, or corrupt (a SIGKILL can land
// mid-write). fromPrev reports that the fallback generation was used. When
// both generations are unreadable the error describes both failures and
// still satisfies errors.Is for the primary's defect class.
func LoadFile(path string) (f *File, fromPrev bool, err error) {
	f, primaryErr := loadOne(path)
	if primaryErr == nil {
		return f, false, nil
	}
	f, prevErr := loadOne(path + PrevSuffix)
	if prevErr == nil {
		return f, true, nil
	}
	if errors.Is(prevErr, os.ErrNotExist) {
		return nil, false, primaryErr
	}
	return nil, false, fmt.Errorf("%w (fallback %s%s also unreadable: %v)", primaryErr, path, PrevSuffix, prevErr)
}

func loadOne(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	f, err := Decode(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
