package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sampleFile() *File {
	return &File{Sections: []Section{
		{ID: "spec", Data: []byte(`{"seed":42,"nodes":100}`)},
		{ID: "cursor", Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{ID: "state", Data: bytes.Repeat([]byte{0xAB}, 1000)},
		{ID: "empty", Data: nil},
	}}
}

func encode(t *testing.T, f *File) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFile()
	raw := encode(t, f)
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Sections) != len(f.Sections) {
		t.Fatalf("section count: got %d, want %d", len(got.Sections), len(f.Sections))
	}
	for i, s := range f.Sections {
		if got.Sections[i].ID != s.ID {
			t.Errorf("section %d id: got %q, want %q", i, got.Sections[i].ID, s.ID)
		}
		if !bytes.Equal(got.Sections[i].Data, s.Data) {
			t.Errorf("section %q payload differs", s.ID)
		}
	}
	// Re-encoding the decoded file must reproduce the exact bytes.
	raw2 := encode(t, got)
	if !bytes.Equal(raw, raw2) {
		t.Fatal("Encode(Decode(raw)) is not byte-identical to raw")
	}
}

func TestSectionLookup(t *testing.T) {
	f := sampleFile()
	if data, ok := f.Section("cursor"); !ok || len(data) != 8 {
		t.Fatalf("Section(cursor) = %v, %v", data, ok)
	}
	if _, ok := f.Section("absent"); ok {
		t.Fatal("Section(absent) reported present")
	}
}

// TestDecodeTruncated cuts a valid file at every possible length; each cut
// must yield ErrTruncated — never a panic, never a silent success.
func TestDecodeTruncated(t *testing.T) {
	raw := encode(t, sampleFile())
	for cut := 0; cut < len(raw); cut++ {
		_, err := Decode(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("cut at %d of %d: Decode succeeded on truncated file", cut, len(raw))
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
}

// TestDecodeBitFlip flips one bit in every byte of a valid file; each
// corruption must yield a typed snapshot error (checksum, format, version,
// or truncation when a length field shrinks the declared shape).
func TestDecodeBitFlip(t *testing.T) {
	raw := encode(t, sampleFile())
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x10
		_, err := Decode(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
		if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrFormat) &&
			!errors.Is(err, ErrVersion) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("bit flip at byte %d: untyped error %v", i, err)
		}
	}
}

func TestDecodeSectionChecksumPinpointed(t *testing.T) {
	raw := encode(t, sampleFile())
	// Flip a byte inside the "state" payload (the 1000-byte 0xAB run is
	// easy to find).
	i := bytes.Index(raw, bytes.Repeat([]byte{0xAB}, 16))
	if i < 0 {
		t.Fatal("could not locate state payload")
	}
	mut := append([]byte(nil), raw...)
	mut[i+5] ^= 0x01
	_, err := Decode(bytes.NewReader(mut))
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *ChecksumError", err)
	}
	if ce.Section != "state" {
		t.Fatalf("checksum error pinned to %q, want \"state\"", ce.Section)
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatal("ChecksumError does not unwrap to ErrChecksum")
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	raw := encode(t, sampleFile())
	mut := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint16(mut[len(Magic):], Version+7)
	_, err := Decode(bytes.NewReader(mut))
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want *VersionError", err)
	}
	if ve.Got != Version+7 {
		t.Fatalf("VersionError.Got = %d, want %d", ve.Got, Version+7)
	}
	if !errors.Is(err, ErrVersion) {
		t.Fatal("VersionError does not unwrap to ErrVersion")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	raw := encode(t, sampleFile())
	mut := append([]byte(nil), raw...)
	mut[0] = 'X'
	if _, err := Decode(bytes.NewReader(mut)); !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
}

func TestDecodeHugeSectionLength(t *testing.T) {
	// A file whose first section declares an absurd payload length must be
	// rejected without attempting the allocation.
	var buf bytes.Buffer
	buf.WriteString(Magic)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], Version)
	buf.Write(u16[:])
	binary.LittleEndian.PutUint16(u16[:], 1)
	buf.Write(u16[:])
	buf.WriteByte(1)
	buf.WriteByte('x')
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], 0xFFFFFFF0)
	buf.Write(u32[:])
	_, err := Decode(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
}

func TestEncodeRejectsBadSections(t *testing.T) {
	var buf bytes.Buffer
	f := &File{Sections: []Section{{ID: "", Data: []byte("x")}}}
	if err := f.Encode(&buf); !errors.Is(err, ErrFormat) {
		t.Fatalf("empty id: got %v, want ErrFormat", err)
	}
	f = &File{Sections: []Section{{ID: string(make([]byte, 300)), Data: nil}}}
	if err := f.Encode(&buf); !errors.Is(err, ErrFormat) {
		t.Fatalf("long id: got %v, want ErrFormat", err)
	}
}

func TestStateTableRoundTrip(t *testing.T) {
	tab := &StateTable{}
	tab.Add("sim.now", 42)
	tab.Add("sim.seq", 0xDEADBEEF)
	h := NewHash()
	h.Str("payload")
	h.F64(3.25)
	h.Bool(true)
	tab.AddHash("dfs.registry", h)
	got, err := DecodeStateTable(tab.Encode())
	if err != nil {
		t.Fatalf("DecodeStateTable: %v", err)
	}
	if diff := tab.Diff(got); len(diff) != 0 {
		t.Fatalf("round trip diff: %v", diff)
	}
	if tab.Fingerprint() != got.Fingerprint() {
		t.Fatal("fingerprints differ after round trip")
	}
}

func TestStateTableDiff(t *testing.T) {
	a := &StateTable{}
	a.Add("x", 1)
	a.Add("y", 2)
	b := &StateTable{}
	b.Add("x", 1)
	b.Add("y", 3)
	diff := a.Diff(b)
	if len(diff) != 1 || diff[0] != "y" {
		t.Fatalf("Diff = %v, want [y]", diff)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("differing tables share a fingerprint")
	}
}

func TestStateTableDecodeTruncated(t *testing.T) {
	tab := &StateTable{}
	tab.Add("label", 7)
	raw := tab.Encode()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeStateTable(raw[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
	if _, err := DecodeStateTable(append(raw, 0)); !errors.Is(err, ErrFormat) {
		t.Fatal("trailing byte not rejected")
	}
}

func TestWriteFileRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	gen1 := &File{Sections: []Section{{ID: "gen", Data: []byte("one")}}}
	if err := WriteFile(path, gen1); err != nil {
		t.Fatalf("WriteFile gen1: %v", err)
	}
	f, fromPrev, err := LoadFile(path)
	if err != nil || fromPrev {
		t.Fatalf("LoadFile gen1: %v fromPrev=%v", err, fromPrev)
	}
	if data, _ := f.Section("gen"); string(data) != "one" {
		t.Fatalf("gen1 payload = %q", data)
	}

	gen2 := &File{Sections: []Section{{ID: "gen", Data: []byte("two")}}}
	if err := WriteFile(path, gen2); err != nil {
		t.Fatalf("WriteFile gen2: %v", err)
	}
	f, fromPrev, err = LoadFile(path)
	if err != nil || fromPrev {
		t.Fatalf("LoadFile gen2: %v fromPrev=%v", err, fromPrev)
	}
	if data, _ := f.Section("gen"); string(data) != "two" {
		t.Fatalf("gen2 payload = %q", data)
	}
	// The previous generation must survive the rotation.
	prev, err := os.ReadFile(path + PrevSuffix)
	if err != nil {
		t.Fatalf("prev generation missing: %v", err)
	}
	pf, err := Decode(bytes.NewReader(prev))
	if err != nil {
		t.Fatalf("prev generation corrupt: %v", err)
	}
	if data, _ := pf.Section("gen"); string(data) != "one" {
		t.Fatalf("prev payload = %q, want \"one\"", data)
	}
}

func TestLoadFileFallsBackToPrev(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	gen1 := &File{Sections: []Section{{ID: "gen", Data: []byte("one")}}}
	gen2 := &File{Sections: []Section{{ID: "gen", Data: []byte("two")}}}
	if err := WriteFile(path, gen1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, gen2); err != nil {
		t.Fatal(err)
	}
	// Simulate a SIGKILL mid-write: truncate the primary.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	f, fromPrev, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile with torn primary: %v", err)
	}
	if !fromPrev {
		t.Fatal("LoadFile did not report the fallback generation")
	}
	if data, _ := f.Section("gen"); string(data) != "one" {
		t.Fatalf("fallback payload = %q, want \"one\"", data)
	}

	// Both generations torn: error must describe the primary's defect.
	if err := os.WriteFile(path+PrevSuffix, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadFile(path)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("both torn: got %v, want ErrTruncated", err)
	}

	// Primary missing entirely, prev gone too.
	os.Remove(path)
	os.Remove(path + PrevSuffix)
	_, _, err = LoadFile(path)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("both missing: got %v, want os.ErrNotExist", err)
	}
}
