// Package snapshot implements the durable-run checkpoint container: a
// versioned, checksummed, length-prefixed section file holding everything
// needed to resume a simulation after the process is killed.
//
// A checkpoint file is
//
//	magic "DARECKPT" | u16 version | u16 section count
//	per section: u8 idLen | id | u32 payloadLen | payload | u32 CRC-32(payload)
//	trailer: magic "DAREDONE" | u32 CRC-32(everything before the trailer)
//
// All integers are little-endian. Every payload carries its own CRC-32
// (IEEE) so a flipped bit is pinned to a section, and the trailer CRC
// plus the up-front section count make truncation detectable even when
// the cut lands exactly on a section boundary. Decoding never panics and
// never partially succeeds: any defect yields a typed error (ErrTruncated,
// ErrChecksum, ErrVersion, ErrFormat) and no sections.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic opens every checkpoint file; trailerMagic closes it.
const (
	Magic        = "DARECKPT"
	trailerMagic = "DAREDONE"
)

// Version is the current container format version. Decoders reject any
// other version with ErrVersion: the state fingerprint scheme gives no
// cross-version compatibility guarantee, so pretending to read an old
// snapshot would be silent corruption.
const Version uint16 = 1

// Sentinel errors; the typed errors below wrap them, so callers can use
// errors.Is for the class and errors.As for the detail.
var (
	// ErrTruncated marks a file that ends before its declared content.
	ErrTruncated = errors.New("snapshot: truncated file")
	// ErrChecksum marks a section or trailer whose CRC-32 does not match.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrVersion marks a well-formed file written by a different format
	// version.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrFormat marks structural defects: bad magic, bogus lengths,
	// duplicate or unknown section shape.
	ErrFormat = errors.New("snapshot: malformed file")
)

// ChecksumError reports which section failed its CRC.
type ChecksumError struct {
	Section string // empty for the trailer CRC
	Want    uint32
	Got     uint32
}

func (e *ChecksumError) Error() string {
	where := "trailer"
	if e.Section != "" {
		where = fmt.Sprintf("section %q", e.Section)
	}
	return fmt.Sprintf("snapshot: checksum mismatch in %s (want %08x, got %08x)", where, e.Want, e.Got)
}

// Unwrap makes errors.Is(err, ErrChecksum) true.
func (e *ChecksumError) Unwrap() error { return ErrChecksum }

// VersionError reports the version a decoder refused.
type VersionError struct{ Got uint16 }

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: unsupported version %d (this build reads version %d)", e.Got, Version)
}

// Unwrap makes errors.Is(err, ErrVersion) true.
func (e *VersionError) Unwrap() error { return ErrVersion }

// Section is one length-prefixed, individually checksummed unit of a
// checkpoint file.
type Section struct {
	ID   string
	Data []byte
}

// File is the decoded checkpoint container: its sections in file order.
type File struct {
	Sections []Section
}

// Section returns the payload of the section with the given id, or nil
// and false when the file has no such section.
func (f *File) Section(id string) ([]byte, bool) {
	for _, s := range f.Sections {
		if s.ID == id {
			return s.Data, true
		}
	}
	return nil, false
}

// maxSectionLen bounds a single section payload (64 MiB); a larger length
// prefix is treated as corruption rather than honored as an allocation.
const maxSectionLen = 64 << 20

// Encode writes the container to w. The same File always encodes to the
// same bytes, so Encode∘Decode is a byte-level fixed point — the property
// FuzzSnapshotRoundTrip pins.
func (f *File) Encode(w io.Writer) error {
	if len(f.Sections) > 0xFFFF {
		return fmt.Errorf("%w: %d sections (max 65535)", ErrFormat, len(f.Sections))
	}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(w, crc)
	if _, err := io.WriteString(out, Magic); err != nil {
		return err
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], Version)
	if _, err := out.Write(u16[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(u16[:], uint16(len(f.Sections)))
	if _, err := out.Write(u16[:]); err != nil {
		return err
	}
	var u32 [4]byte
	for _, s := range f.Sections {
		if len(s.ID) == 0 || len(s.ID) > 255 {
			return fmt.Errorf("%w: section id %q must be 1..255 bytes", ErrFormat, s.ID)
		}
		if len(s.Data) > maxSectionLen {
			return fmt.Errorf("%w: section %q payload %d bytes exceeds %d", ErrFormat, s.ID, len(s.Data), maxSectionLen)
		}
		if _, err := out.Write([]byte{byte(len(s.ID))}); err != nil {
			return err
		}
		if _, err := io.WriteString(out, s.ID); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(u32[:], uint32(len(s.Data)))
		if _, err := out.Write(u32[:]); err != nil {
			return err
		}
		if _, err := out.Write(s.Data); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(s.Data))
		if _, err := out.Write(u32[:]); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(out, trailerMagic); err != nil {
		return err
	}
	// The trailer CRC covers everything written so far, trailer magic
	// included; it goes to w only (it cannot cover itself).
	binary.LittleEndian.PutUint32(u32[:], crc.Sum32())
	_, err := w.Write(u32[:])
	return err
}

// Decode reads a container from r. It consumes exactly one container and
// returns typed errors for every defect class; on error the returned File
// is nil.
func Decode(r io.Reader) (*File, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	head := make([]byte, len(Magic)+4)
	if err := readFull(tr, head); err != nil {
		return nil, err
	}
	if string(head[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, head[:len(Magic)])
	}
	if v := binary.LittleEndian.Uint16(head[len(Magic):]); v != Version {
		return nil, &VersionError{Got: v}
	}
	count := int(binary.LittleEndian.Uint16(head[len(Magic)+2:]))
	f := &File{}
	var u32 [4]byte
	for i := 0; i < count; i++ {
		var idLen [1]byte
		if err := readFull(tr, idLen[:]); err != nil {
			return nil, err
		}
		if idLen[0] == 0 {
			return nil, fmt.Errorf("%w: zero-length section id", ErrFormat)
		}
		id := make([]byte, idLen[0])
		if err := readFull(tr, id); err != nil {
			return nil, err
		}
		if err := readFull(tr, u32[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(u32[:])
		if n > maxSectionLen {
			return nil, fmt.Errorf("%w: section %q declares %d bytes (max %d)", ErrFormat, id, n, maxSectionLen)
		}
		data := make([]byte, n)
		if err := readFull(tr, data); err != nil {
			return nil, err
		}
		if err := readFull(tr, u32[:]); err != nil {
			return nil, err
		}
		want := binary.LittleEndian.Uint32(u32[:])
		if got := crc32.ChecksumIEEE(data); got != want {
			return nil, &ChecksumError{Section: string(id), Want: want, Got: got}
		}
		f.Sections = append(f.Sections, Section{ID: string(id), Data: data})
	}
	tail := make([]byte, len(trailerMagic))
	if err := readFull(tr, tail); err != nil {
		return nil, err
	}
	if string(tail) != trailerMagic {
		return nil, fmt.Errorf("%w: bad trailer magic %q", ErrFormat, tail)
	}
	sum := crc.Sum32() // covers header, sections, trailer magic
	if err := readFull(r, u32[:]); err != nil {
		return nil, err
	}
	if want := binary.LittleEndian.Uint32(u32[:]); want != sum {
		return nil, &ChecksumError{Want: want, Got: sum}
	}
	return f, nil
}

// readFull reads exactly len(p) bytes, mapping every short read onto
// ErrTruncated: a checkpoint has a declared shape, so "the file ended" is
// always truncation, never a clean EOF.
func readFull(r io.Reader, p []byte) error {
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: unexpected end of file", ErrTruncated)
		}
		return err
	}
	return nil
}
