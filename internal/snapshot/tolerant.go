package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// DecodeTolerant reads a container from r, salvaging every section whose
// own CRC-32 checks out even when the file as a whole is damaged. Where
// Decode refuses the entire file on the first defect, DecodeTolerant
// keeps walking: a section with a checksum mismatch is reported in bad
// (by id) and skipped; a file truncated mid-section yields the sections
// before the tear (the torn section's id lands in bad when it was
// readable); a trailer CRC mismatch is ignored, because the per-section
// CRCs already pin which payloads are trustworthy.
//
// This is the state-mode resume loader: a checkpoint whose `st.*` state
// sections are torn but whose spec and cursor sections are intact can
// still resume — in replay mode. Only an unreadable header (bad magic,
// wrong version, I/O error) is a hard error.
func DecodeTolerant(r io.Reader) (f *File, bad []string, err error) {
	head := make([]byte, len(Magic)+4)
	if err := readFull(r, head); err != nil {
		return nil, nil, err
	}
	if string(head[:len(Magic)]) != Magic {
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrFormat, head[:len(Magic)])
	}
	if v := binary.LittleEndian.Uint16(head[len(Magic):]); v != Version {
		return nil, nil, &VersionError{Got: v}
	}
	count := int(binary.LittleEndian.Uint16(head[len(Magic)+2:]))
	f = &File{}
	var u32 [4]byte
	for i := 0; i < count; i++ {
		var idLen [1]byte
		if err := readFull(r, idLen[:]); err != nil {
			return f, bad, nil // clean tear between sections
		}
		if idLen[0] == 0 {
			return f, bad, nil // structural damage; keep what we have
		}
		id := make([]byte, idLen[0])
		if err := readFull(r, id); err != nil {
			return f, bad, nil
		}
		if err := readFull(r, u32[:]); err != nil {
			return f, append(bad, string(id)), nil
		}
		n := binary.LittleEndian.Uint32(u32[:])
		if n > maxSectionLen {
			return f, append(bad, string(id)), nil
		}
		data := make([]byte, n)
		if err := readFull(r, data); err != nil {
			return f, append(bad, string(id)), nil
		}
		if err := readFull(r, u32[:]); err != nil {
			return f, append(bad, string(id)), nil
		}
		if want := binary.LittleEndian.Uint32(u32[:]); crc32.ChecksumIEEE(data) != want {
			bad = append(bad, string(id))
			continue
		}
		f.Sections = append(f.Sections, Section{ID: string(id), Data: data})
	}
	return f, bad, nil
}

// LoadFileTolerant reads the checkpoint at path with DecodeTolerant,
// falling back to path+PrevSuffix when the primary's header itself is
// unreadable. fromPrev reports that the fallback generation was used.
func LoadFileTolerant(path string) (f *File, bad []string, fromPrev bool, err error) {
	f, bad, primaryErr := loadOneTolerant(path)
	if primaryErr == nil {
		return f, bad, false, nil
	}
	f, bad, prevErr := loadOneTolerant(path + PrevSuffix)
	if prevErr == nil {
		return f, bad, true, nil
	}
	if errors.Is(prevErr, os.ErrNotExist) {
		return nil, nil, false, primaryErr
	}
	return nil, nil, false, fmt.Errorf("%w (fallback %s%s also unreadable: %v)", primaryErr, path, PrevSuffix, prevErr)
}

func loadOneTolerant(path string) (*File, []string, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer in.Close()
	f, bad, err := DecodeTolerant(in)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, bad, nil
}
