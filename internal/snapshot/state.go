package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Hash is a streaming FNV-1a 64-bit accumulator with typed feeds. Every
// layer of the simulator folds its live state through one of these, so a
// single uint64 pins an entire subsystem; any divergence between a
// restored run and the original surfaces as a fingerprint mismatch
// instead of silently wrong results.
type Hash struct{ h uint64 }

// NewHash returns a Hash at the FNV-1a offset basis.
func NewHash() *Hash { return &Hash{h: 14695981039346656037} }

const fnvPrime = 1099511628211

func (h *Hash) byte(b byte) {
	h.h ^= uint64(b)
	h.h *= fnvPrime
}

// U64 folds a uint64.
func (h *Hash) U64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

// I64 folds an int64.
func (h *Hash) I64(v int64) { h.U64(uint64(v)) }

// Int folds an int.
func (h *Hash) Int(v int) { h.U64(uint64(int64(v))) }

// F64 folds a float64 by bit pattern, so -0.0 and 0.0 stay distinct and
// no precision is lost.
func (h *Hash) F64(v float64) { h.U64(math.Float64bits(v)) }

// Bool folds a bool.
func (h *Hash) Bool(v bool) {
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

// Str folds a length-prefixed string (prefixing keeps "ab","c" distinct
// from "a","bc").
func (h *Hash) Str(s string) {
	h.Int(len(s))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// Sum reports the accumulated hash.
func (h *Hash) Sum() uint64 { return h.h }

// StateTable is an ordered list of labeled 64-bit state digests — one row
// per subsystem facet (engine clock, pending-event schedule, DFS registry,
// job ledger, RNG positions, policy state, ...). The order and labels are
// part of the fingerprint: a resumed run must rebuild the exact same
// table, row for row. Keeping rows labeled (rather than one opaque hash)
// means a divergence report can say which subsystem drifted.
type StateTable struct {
	rows []StateRow
}

// StateRow is one labeled state digest.
type StateRow struct {
	Label string
	Value uint64
}

// Add appends one row.
func (t *StateTable) Add(label string, v uint64) {
	t.rows = append(t.rows, StateRow{Label: label, Value: v})
}

// AddHash appends the accumulated sum of h.
func (t *StateTable) AddHash(label string, h *Hash) { t.Add(label, h.Sum()) }

// Rows returns the table rows in insertion order.
func (t *StateTable) Rows() []StateRow { return t.rows }

// Fingerprint folds the whole table (labels and values, in order) into
// one digest.
func (t *StateTable) Fingerprint() uint64 {
	h := NewHash()
	for _, r := range t.rows {
		h.Str(r.Label)
		h.U64(r.Value)
	}
	return h.Sum()
}

// Diff reports the labels whose values differ between t and other,
// including rows present in only one table. Empty means the tables are
// identical.
func (t *StateTable) Diff(other *StateTable) []string {
	var out []string
	n := len(t.rows)
	if len(other.rows) > n {
		n = len(other.rows)
	}
	for i := 0; i < n; i++ {
		switch {
		case i >= len(t.rows):
			out = append(out, other.rows[i].Label+" (missing here)")
		case i >= len(other.rows):
			out = append(out, t.rows[i].Label+" (missing there)")
		case t.rows[i].Label != other.rows[i].Label:
			out = append(out, fmt.Sprintf("%s vs %s (label mismatch)", t.rows[i].Label, other.rows[i].Label))
		case t.rows[i].Value != other.rows[i].Value:
			out = append(out, t.rows[i].Label)
		}
	}
	return out
}

// String renders the table for inspection (trace-analyze -ckpt).
func (t *StateTable) String() string {
	var sb strings.Builder
	for _, r := range t.rows {
		fmt.Fprintf(&sb, "%-28s %016x\n", r.Label, r.Value)
	}
	return sb.String()
}

// Encode serializes the table: u32 row count, then per row a
// length-prefixed label and the value.
func (t *StateTable) Encode() []byte {
	var out []byte
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(t.rows)))
	out = append(out, u32[:]...)
	for _, r := range t.rows {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(r.Label)))
		out = append(out, u32[:]...)
		out = append(out, r.Label...)
		binary.LittleEndian.PutUint64(u64[:], r.Value)
		out = append(out, u64[:]...)
	}
	return out
}

// DecodeStateTable parses an Encode payload.
func DecodeStateTable(b []byte) (*StateTable, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: state table header", ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	t := &StateTable{}
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: state table row %d", ErrTruncated, i)
		}
		l := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < l+8 {
			return nil, fmt.Errorf("%w: state table row %d", ErrTruncated, i)
		}
		label := string(b[:l])
		b = b[l:]
		t.Add(label, binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after state table", ErrFormat, len(b))
	}
	return t, nil
}
