package mapreduce

// In-package tests for the master crash/failover machinery: the ledger
// verification inside recoverMaster cross-checks the journaled blame
// against the live counters, so these tests double as a consistency proof
// for the whole journaled event stream.

import (
	"reflect"
	"testing"

	"dare/internal/config"
	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/stats"
	"dare/internal/topology"
	"dare/internal/workload"
)

// masterFIFO is a minimal in-package FIFO TaskSelector (the real
// schedulers live in internal/scheduler, which imports this package):
// head-of-line job, node-local then rack-local then any block.
type masterFIFO struct{ jobs []*Job }

func (s *masterFIFO) Name() string  { return "test-fifo" }
func (s *masterFIFO) AddJob(j *Job) { s.jobs = append(s.jobs, j) }
func (s *masterFIFO) RemoveJob(j *Job) {
	for i, cur := range s.jobs {
		if cur == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			return
		}
	}
}
func (s *masterFIFO) SelectMapTask(node topology.NodeID, now float64) (*Job, dfs.BlockID, bool) {
	for _, j := range s.jobs {
		if j.PendingMaps() == 0 {
			continue
		}
		if b, ok := j.TakeLocalBlock(node); ok {
			return j, b, true
		}
		if b, ok := j.TakeRackLocalBlock(node); ok {
			return j, b, true
		}
		if b, ok := j.TakeAnyBlock(); ok {
			return j, b, true
		}
	}
	return nil, 0, false
}
func (s *masterFIFO) SelectReduceTask(node topology.NodeID, now float64) (*Job, bool) {
	for _, j := range s.jobs {
		if j.PendingReduces() > 0 {
			return j, true
		}
	}
	return nil, false
}

// masterFixture builds the same two-rack cluster the churn tests use.
func masterFixture(t *testing.T, seed uint64, jobs int) (*Cluster, *Tracker) {
	t.Helper()
	p := config.CCT()
	p.Slaves = 10
	p.RackSize = 5
	c, err := NewCluster(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.Generate(workload.GenConfig{NumJobs: jobs, NumFiles: 15, Seed: seed})
	tr, err := NewTracker(c, wl, &masterFIFO{})
	if err != nil {
		t.Fatal(err)
	}
	return c, tr
}

// Arming the recovery machinery without scheduling an outage must change
// nothing: the journal is a pure observer, and every failover hook is one
// predictable branch when the master never goes down.
func TestMasterRecoveryEnableIsInert(t *testing.T) {
	run := func(enable bool) []Result {
		_, tr := masterFixture(t, 24, 50)
		if enable {
			tr.EnableMasterRecovery(16)
		}
		results, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	plain, armed := run(false), run(true)
	if !reflect.DeepEqual(plain, armed) {
		t.Fatal("EnableMasterRecovery without an outage changed the run")
	}
}

// An outage mid-workload kills every in-flight attempt, defers heartbeats,
// and (report mode) warms back up from one block report per node — and
// every killed attempt's requeue must still carry its job to completion.
func TestMasterOutageKillsInflightAndRequeues(t *testing.T) {
	_, tr := masterFixture(t, 22, 60)
	span := tr.wl.Jobs[len(tr.wl.Jobs)-1].Arrival
	tr.EnableMasterRecovery(32)
	tr.ScheduleMasterOutage(0.3*span, 0.15*span, dfs.RecoverReport)
	tr.SetInvariantChecks(true)
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 60 {
		t.Fatalf("results %d", len(results))
	}
	for _, r := range results {
		if r.Failed {
			t.Fatalf("job %d failed: a master crash must requeue, not burn the job", r.ID)
		}
	}
	m := tr.MasterStats()
	if m.Outages != 1 || m.Downtime <= 0 {
		t.Fatalf("stats %+v", m)
	}
	if m.KilledMaps+m.KilledReduces == 0 {
		t.Fatal("mid-workload crash found nothing in flight")
	}
	if m.DeferredHeartbeats == 0 {
		t.Fatal("no heartbeats went unanswered during the outage")
	}
	if m.BlockReports != 10 {
		t.Fatalf("%d block reports, want one per node", m.BlockReports)
	}
	if m.WarmupTime <= 0 {
		t.Fatal("report-mode warmup cost no time")
	}
}

// Satellite regression: a node that was blacklisted before the crash and
// re-registered cleanly during the outage must come back forgiven — the
// journal rebuild restores blame counters BEFORE the deferred rejoin
// applies, so the rejoin's NodeRecover wipes them and nothing resurrects
// them afterwards. A bystander's blame, by contrast, must survive the
// restart record for record.
//
// The victim's third blamed failure lands after it is already blacklisted:
// the live counter and the journaled ledger must both count it (the ledger
// verification inside the rebuild aborts the run if they ever diverge).
func TestOutageRejoinDoesNotResurrectBlacklist(t *testing.T) {
	c, tr := masterFixture(t, 21, 60)
	tr.EnableMasterRecovery(0)
	tr.SetBlacklistAfter(2)
	const victim, bystander = topology.NodeID(3), topology.NodeID(7)
	blame := func(n topology.NodeID) {
		ev := event.New(event.TaskFail)
		ev.Node = int32(n)
		ev.Flag = true
		tr.bus.Publish(ev)
	}
	tr.c.Eng.DeferAt(5, func() {
		blame(victim)
		blame(victim)
		blame(victim)
		blame(bystander)
	})
	tr.ScheduleMasterOutage(10, 8, dfs.RecoverJournal)
	tr.ScheduleNodeFailure(victim, 12)
	tr.ScheduleNodeRecovery(victim, 14)
	tr.SetInvariantChecks(true)
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 60 {
		t.Fatalf("results %d", len(results))
	}
	if tr.MasterStats().Outages != 1 {
		t.Fatalf("outages %d", tr.MasterStats().Outages)
	}
	if c.Nodes[victim].Blacklisted {
		t.Fatal("outage-time rejoin did not clear the blacklist")
	}
	if got := tr.faults.nodeTaskFailures[victim]; got != 0 {
		t.Fatalf("journal rebuild resurrected %d blame on the re-registered node", got)
	}
	if got := tr.faults.nodeTaskFailures[bystander]; got != 1 {
		t.Fatalf("bystander blame %d across the restart, want 1", got)
	}
}

// Heavy blame traffic across two outages: the rebuild's ledger-vs-live
// verification runs at every recovery, so any drift between the journaled
// blame and the live counters fails the run.
func TestJournalRebuildVerifiesUnderInjectedFailures(t *testing.T) {
	_, tr := masterFixture(t, 25, 60)
	span := tr.wl.Jobs[len(tr.wl.Jobs)-1].Arrival
	tr.EnableMasterRecovery(64)
	tr.SetTaskFailureInjection(0.5, stats.NewRNG(5))
	tr.SetBlacklistAfter(2)
	tr.ScheduleMasterOutage(0.25*span, span/16, dfs.RecoverJournal)
	tr.ScheduleMasterOutage(0.6*span, span/16, dfs.RecoverReport)
	tr.SetInvariantChecks(true)
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 60 {
		t.Fatalf("results %d", len(results))
	}
	if tr.MasterStats().Outages != 2 {
		t.Fatalf("outages %d", tr.MasterStats().Outages)
	}
}

// An outage scheduled without arming the machinery is a configuration
// error, not a silent no-op.
func TestScheduleOutageWithoutEnableErrors(t *testing.T) {
	_, tr := masterFixture(t, 23, 10)
	tr.ScheduleMasterOutage(5, 2, dfs.RecoverJournal)
	if _, err := tr.Run(); err == nil {
		t.Fatal("outage without EnableMasterRecovery accepted")
	}
}
