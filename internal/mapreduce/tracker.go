package mapreduce

import (
	"fmt"
	"sort"

	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/sim"
	"dare/internal/workload"
)

// Tracker is the job tracker: it loads the workload's files into the DFS,
// replays job arrivals, drives per-node heartbeats, launches tasks, and
// collects results.
//
// Everything reactive lives elsewhere, as subscribers on the cluster event
// bus: locality-index maintenance (locality.go), attempt limits, backoff,
// and blacklisting (failurehandler.go), speculative execution
// (speculator.go), and invariant checking (invariants.go). The tracker
// itself only drives the clock-side machinery — arrivals, heartbeats, task
// execution (exec.go), and injected churn (failure.go) — and publishes the
// events those components react to.
type Tracker struct {
	c   *Cluster
	sel TaskSelector
	bus *event.Bus

	wl      *workload.Workload
	files   []*dfs.File
	active  []*Job // arrival order; iterated on every replica event
	jobByID map[int32]*Job
	results []Result

	totalJobs int
	completed int
	hb        *heartbeatDriver

	// Failure-injection state (see failure.go).
	failures       []plannedFailure
	recoveries     []plannedRecovery
	rackFailures   []plannedRackFailure
	inflight       map[*Node]map[*taskRec]bool
	failureEvents  []FailureEvent
	recoveryEvents []RecoveryEvent
	repairDisabled bool
	repairsDone    int
	lastRepairAt   float64
	// repairInFlight dedups repair scheduling: blocks already queued by an
	// overlapping round are not re-queued (no double copies).
	repairInFlight map[dfs.BlockID]bool

	// Gray-failure injection state (see gray.go).
	gray grayState

	// Control-plane failover state (see master.go).
	master masterState

	// weights caches the access-weight map backing per-event weighted
	// availability snapshots; built lazily from the workload.
	weights map[dfs.BlockID]float64

	// The tracker's decomposed concerns, each a bus subscriber living in
	// its own file.
	locality *localityIndexMaintainer
	faults   *failureHandler
	spec     *speculator
	checker  *invariantChecker

	// linearScan makes every job use the original O(pending) scan instead
	// of the inverted locality index (equivalence testing).
	linearScan bool
	// perNodeHeartbeats drives heartbeats with one ticker per node instead
	// of coalesced cohort events (equivalence testing; see heartbeats.go).
	perNodeHeartbeats bool
	// hbCohortSize overrides the auto-scaled heartbeat cohort size (0 =
	// auto); differential tests force real multi-member sweeps on small
	// clusters with it.
	hbCohortSize int
	// streaming marks open-ended service mode: completion never stops the
	// engine and the job count grows as the stream generator appends.
	streaming bool
}

// NewTracker wires a tracker to a cluster and a scheduler, subscribes the
// tracker's components to the cluster bus, and loads the workload's file
// population into the DFS immediately (files exist before the first job
// arrives, as in the paper's experiments where SWIM pre-populates HDFS).
func NewTracker(c *Cluster, wl *workload.Workload, sel TaskSelector) (*Tracker, error) {
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	t := &Tracker{
		c:         c,
		sel:       sel,
		bus:       c.Bus,
		wl:        wl,
		jobByID:   make(map[int32]*Job),
		totalJobs: len(wl.Jobs),
		inflight:  make(map[*Node]map[*taskRec]bool),

		repairInFlight: make(map[dfs.BlockID]bool),
	}
	t.locality = &localityIndexMaintainer{t: t}
	t.faults = newFailureHandler(t)
	t.spec = &speculator{t: t}
	t.checker = &invariantChecker{t: t}
	// Registration order is dispatch order: the index maintainer first, so
	// every later subscriber (and the checker in particular) observes a
	// consistent locality index; the checker last, so it judges the state
	// every other component has finished reacting to.
	t.bus.Subscribe(t.locality)
	t.bus.Subscribe(t.faults)
	t.bus.Subscribe(t.spec)
	t.bus.Subscribe(t.checker)
	blockSize := c.Profile.BlockSizeBytes()
	for _, fs := range wl.Files {
		f, err := c.NN.CreateFile(fs.Name, fs.Blocks, blockSize, 0)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: loading %q: %w", fs.Name, err)
		}
		t.files = append(t.files, f)
	}
	return t, nil
}

// SetLinearScan switches every job this tracker creates to the original
// linear-scan block selection (true) or the inverted locality index
// (false, the default). Both paths are byte-identical by construction;
// the switch exists so tests can prove it. Call before Run.
func (t *Tracker) SetLinearScan(v bool) { t.linearScan = v }

// SetPerNodeHeartbeats switches heartbeat driving to one sim.Ticker per
// node (true) or coalesced cohort events (false, the default). Both modes
// publish byte-identical heartbeat streams by construction; the switch
// exists so tests and the scale benchmark can prove and measure it. Call
// before Run.
func (t *Tracker) SetPerNodeHeartbeats(v bool) { t.perNodeHeartbeats = v }

// SetHeartbeatCohortSize overrides the auto-scaled cohort size (0 = auto,
// the default). Differential tests use it to force multi-member sweeps on
// clusters small enough that the auto scale would give singleton cohorts.
// Call before Run.
func (t *Tracker) SetHeartbeatCohortSize(n int) { t.hbCohortSize = n }

// Files exposes the DFS files backing the workload, index-aligned with
// workload.Files.
func (t *Tracker) Files() []*dfs.File { return t.files }

// Cluster exposes the underlying cluster.
func (t *Tracker) Cluster() *Cluster { return t.c }

// Run replays the whole workload and returns per-job results sorted by
// job ID. It is single-use.
func (t *Tracker) Run() ([]Result, error) {
	return t.RunWith(nil)
}

// RunWith is Run with a pluggable engine drive: every stretch of event
// processing goes through run(engine, until) — the workload horizon first,
// then each repair-drain extension. The default drive (nil) is a plain
// RunUntil. The durable runner substitutes a drive that stops at
// checkpoint boundaries and on interrupts; an error from run abandons the
// whole run (including the drain loop) and is returned as-is.
func (t *Tracker) RunWith(run func(eng *sim.Engine, until float64) error) ([]Result, error) {
	eng := t.c.Eng
	if run == nil {
		run = func(e *sim.Engine, until float64) error {
			e.RunUntil(until)
			return nil
		}
	}
	for _, spec := range t.wl.Jobs {
		spec := spec
		eng.DeferAt(spec.Arrival, func() { t.arrive(spec) })
	}
	if err := t.scheduleInjectedChurn(); err != nil {
		return nil, err
	}
	if err := t.scheduleInjectedGray(); err != nil {
		return nil, err
	}
	if err := t.scheduleInjectedMaster(); err != nil {
		return nil, err
	}
	// De-synchronized heartbeats, like real clusters: one coalesced event
	// per cohort per interval (or one ticker per node in the equivalence-
	// testing mode).
	t.hb = newHeartbeatDriver(t.c, t.c.Profile.HeartbeatInterval, t.hbCohortSize, t.perNodeHeartbeats, t.heartbeat)
	// Generous runaway guard: a workload that cannot finish in simulated
	// years indicates a scheduling bug; surface it instead of spinning.
	// Streaming runs have no fixed job list; their drive closure owns the
	// horizon and returns when the stream ends.
	horizon := t.lastArrival() + 1e7
	if err := run(eng, horizon); err != nil {
		return nil, err
	}
	t.hb.StopAll()
	// Background re-replication outlives the workload: drain the repair
	// queue so post-run state reflects a healed DFS. The loop re-reads the
	// bound because the detection event itself extends it.
	for t.checker.err == nil && t.lastRepairAt > eng.Now() {
		if err := run(eng, t.lastRepairAt+1e-9); err != nil {
			return nil, err
		}
	}
	if t.checker.err != nil {
		return nil, t.checker.err
	}
	if t.master.err != nil {
		return nil, t.master.err
	}
	if !t.streaming && t.completed != t.totalJobs {
		return nil, fmt.Errorf("mapreduce: only %d/%d jobs completed by horizon %g", t.completed, t.totalJobs, horizon)
	}
	sort.Slice(t.results, func(i, j int) bool { return t.results[i].ID < t.results[j].ID })
	return t.results, nil
}

// SetStreaming switches the tracker to open-ended service mode: job
// completion no longer stops the engine (the stream drive owns the
// horizon), and RunWith returns whatever completed instead of requiring
// every appended job to finish. Call before Run.
func (t *Tracker) SetStreaming(v bool) { t.streaming = v }

// AppendJobs defers the arrival of additional jobs mid-run — the stream
// generator's per-window chunk. Every arrival must be in the engine's
// future; the tracker trusts the generator on that (DeferAt panics
// otherwise).
func (t *Tracker) AppendJobs(specs []workload.Job) {
	for _, spec := range specs {
		spec := spec
		t.totalJobs++
		t.c.Eng.DeferAtTag(spec.Arrival, arriveTag{spec: spec},
			func() { t.arrive(spec) })
	}
}

// Completed reports jobs finished so far (stream-window metrics).
func (t *Tracker) Completed() int { return t.completed }

// TotalJobs reports jobs submitted so far (arrivals already deferred).
func (t *Tracker) TotalJobs() int { return t.totalJobs }

// Results returns the results collected so far, sorted by job ID. The
// streaming report path reads this between windows; the slice is a copy.
func (t *Tracker) Results() []Result {
	out := append([]Result(nil), t.results...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (t *Tracker) lastArrival() float64 {
	if len(t.wl.Jobs) == 0 {
		return 0
	}
	return t.wl.Jobs[len(t.wl.Jobs)-1].Arrival
}

func (t *Tracker) arrive(spec workload.Job) {
	j := NewJob(spec, t.files[spec.File], t.c)
	if t.linearScan {
		j.linearScan = true
	}
	t.active = append(t.active, j)
	t.jobByID[int32(spec.ID)] = j
	t.sel.AddJob(j)
	ev := event.New(event.JobArrive)
	ev.Job = int32(spec.ID)
	ev.File = int32(t.files[spec.File].ID)
	ev.Aux = int64(spec.NumMaps)
	t.bus.Publish(ev)
}

// heartbeat offers node's free slots to the scheduler, Hadoop-style: the
// task tracker reports in, the job tracker hands back tasks.
func (t *Tracker) heartbeat(node *Node) {
	if t.master.down {
		// Nobody answers: the task tracker retries next interval. No
		// Heartbeat event fires, so the speculator stays silent too.
		t.master.outageHeartbeats++
		t.master.stats.DeferredHeartbeats++
		return
	}
	if t.master.enabled && t.c.NN.NeedsBlockReport(node.ID) {
		// First contact with a warming master delivers the node's block
		// report before any scheduling (even a blacklisted node reports).
		t.deliverReport(node)
	}
	if node.Blacklisted {
		return // reports in, gets no work (Hadoop blacklist semantics)
	}
	now := t.c.Eng.Now()
	for node.FreeMapSlots > 0 {
		j, b, ok := t.sel.SelectMapTask(node.ID, now)
		if !ok {
			break
		}
		t.launchMap(node, j, b)
	}
	// The heartbeat event fires between the map and reduce rounds: the
	// speculator fills map slots the scheduler left idle with backup
	// attempts for stragglers.
	hb := event.New(event.Heartbeat)
	hb.Node = int32(node.ID)
	hb.Rack = int32(t.c.Topo.Rack(node.ID))
	hb.Aux = int64(node.FreeMapSlots)
	t.bus.Publish(hb)
	for node.FreeReduceSlots > 0 {
		j, ok := t.sel.SelectReduceTask(node.ID, now)
		if !ok {
			break
		}
		t.launchReduce(node, j)
	}
}

// finishJob retires a job (completed or failed), emits its JobFinish
// event, and stops the engine when it was the last one.
func (t *Tracker) finishJob(j *Job) {
	if j.finished {
		return
	}
	j.finished = true
	j.finishTime = t.c.Eng.Now()
	for i, a := range t.active {
		if a == j {
			t.active = append(t.active[:i], t.active[i+1:]...)
			break
		}
	}
	delete(t.jobByID, int32(j.Spec.ID))
	t.sel.RemoveJob(j)
	t.results = append(t.results, j.result())
	t.completed++
	ev := event.New(event.JobFinish)
	ev.Job = int32(j.Spec.ID)
	ev.Aux = int64(j.completedMaps)
	ev.Flag = j.failed
	t.bus.Publish(ev)
	if t.completed == t.totalJobs && !t.streaming {
		t.c.Eng.Stop()
	}
}
