package mapreduce

import (
	"fmt"
	"math"
	"sort"

	"dare/internal/dfs"
	"dare/internal/sim"
	"dare/internal/stats"
	"dare/internal/topology"
	"dare/internal/workload"
)

// DefaultMaxTaskAttempts mirrors Hadoop's mapred.map.max.attempts: a map
// input whose attempts fail this many times fails its whole job.
const DefaultMaxTaskAttempts = 4

// DefaultBlacklistAfter is the per-node failed-attempt count at which the
// job tracker stops scheduling on a node until it re-registers.
const DefaultBlacklistAfter = 3

// TaskSelector is the pluggable scheduling policy (FIFO or Fair with delay
// scheduling; see internal/scheduler). The tracker offers it a node with a
// free slot at each heartbeat; the selector picks a job and removes the
// chosen block from that job's pending set.
type TaskSelector interface {
	// Name labels the scheduler in reports.
	Name() string
	// AddJob registers a newly arrived job.
	AddJob(j *Job)
	// RemoveJob deregisters a finished job.
	RemoveJob(j *Job)
	// SelectMapTask picks a map task for a free map slot on node, or
	// ok=false when nothing should launch there now.
	SelectMapTask(node topology.NodeID, now float64) (j *Job, b dfs.BlockID, ok bool)
	// SelectReduceTask picks a job to run a reduce task on node.
	SelectReduceTask(node topology.NodeID, now float64) (j *Job, ok bool)
}

// ReplicationHook observes every scheduled map task; the DARE manager
// implements it. A nil hook disables dynamic replication (vanilla Hadoop).
type ReplicationHook interface {
	OnMapTask(node topology.NodeID, b dfs.BlockID, f dfs.FileID, size int64, local bool)
}

// Tracker is the job tracker: it loads the workload's files into the DFS,
// replays job arrivals, drives per-node heartbeats, launches tasks, and
// collects results.
type Tracker struct {
	c    *Cluster
	sel  TaskSelector
	hook ReplicationHook

	wl      *workload.Workload
	files   []*dfs.File
	active  map[*Job]bool
	results []Result

	totalJobs int
	completed int
	tickers   []*sim.Ticker

	// Failure-injection state (see failure.go).
	failures       []plannedFailure
	recoveries     []plannedRecovery
	rackFailures   []plannedRackFailure
	inflight       map[*Node]map[*taskRec]bool
	failureEvents  []FailureEvent
	recoveryEvents []RecoveryEvent
	repairDisabled bool
	repairsDone    int
	lastRepairAt   float64
	// repairInFlight dedups repair scheduling: blocks already queued by an
	// overlapping round are not re-queued (no double copies).
	repairInFlight map[dfs.BlockID]bool

	// Task-attempt robustness state (see failure.go).
	maxTaskAttempts  int
	blacklistAfter   int
	nodeTaskFailures []int
	taskFailProb     float64
	taskFailG        *stats.RNG

	// weights caches the access-weight map backing per-event weighted
	// availability snapshots; built lazily from the workload.
	weights map[dfs.BlockID]float64

	// checkEnabled runs the full invariant checker after every injected
	// failure/recovery event; the first violation aborts the run.
	checkEnabled bool
	invariantErr error

	// Speculative-execution state (active attempt groups, in creation
	// order for determinism) and its activity counter.
	specGroups   []*taskGroup
	specLaunched int

	// linearScan makes every job use the original O(pending) scan instead
	// of the inverted locality index (equivalence testing).
	linearScan bool
}

// NewTracker wires a tracker to a cluster, a scheduler, and an optional
// replication hook. It loads the workload's file population into the DFS
// immediately (files exist before the first job arrives, as in the
// paper's experiments where SWIM pre-populates HDFS).
func NewTracker(c *Cluster, wl *workload.Workload, sel TaskSelector, hook ReplicationHook) (*Tracker, error) {
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	t := &Tracker{
		c:         c,
		sel:       sel,
		hook:      hook,
		wl:        wl,
		active:    make(map[*Job]bool),
		totalJobs: len(wl.Jobs),
		inflight:  make(map[*Node]map[*taskRec]bool),

		repairInFlight:   make(map[dfs.BlockID]bool),
		maxTaskAttempts:  DefaultMaxTaskAttempts,
		blacklistAfter:   DefaultBlacklistAfter,
		nodeTaskFailures: make([]int, len(c.Nodes)),
	}
	// Observe every replica-set change so active jobs can keep their
	// locality indices current (DARE announces, evictions, failures,
	// repairs, balancer moves).
	c.NN.SetReplicaListener(t)
	blockSize := c.Profile.BlockSizeBytes()
	for _, fs := range wl.Files {
		f, err := c.NN.CreateFile(fs.Name, fs.Blocks, blockSize, 0)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: loading %q: %w", fs.Name, err)
		}
		t.files = append(t.files, f)
	}
	return t, nil
}

// SetLinearScan switches every job this tracker creates to the original
// linear-scan block selection (true) or the inverted locality index
// (false, the default). Both paths are byte-identical by construction;
// the switch exists so tests can prove it. Call before Run.
func (t *Tracker) SetLinearScan(v bool) { t.linearScan = v }

// SetMaxTaskAttempts overrides the per-task attempt limit (<= 0 retries
// forever). Call before Run.
func (t *Tracker) SetMaxTaskAttempts(n int) { t.maxTaskAttempts = n }

// SetBlacklistAfter overrides the per-node failed-attempt threshold for
// blacklisting (<= 0 disables blacklisting). Call before Run.
func (t *Tracker) SetBlacklistAfter(k int) { t.blacklistAfter = k }

// SetTaskFailureInjection makes each map attempt fail on completion with
// probability p, drawn from rng — the deterministic stand-in for flaky
// disks/JVMs that exercises retry, backoff, and blacklisting on *up*
// nodes. p = 0 (the default) draws nothing, leaving existing runs
// bit-identical. Call before Run.
func (t *Tracker) SetTaskFailureInjection(p float64, rng *stats.RNG) {
	t.taskFailProb = p
	t.taskFailG = rng
}

// SetInvariantChecks makes the tracker run the full metadata invariant
// checker after every injected failure/recovery event; the first violation
// aborts the run with its error. Call before Run.
func (t *Tracker) SetInvariantChecks(v bool) { t.checkEnabled = v }

// Blacklisted reports how many nodes are currently blacklisted.
func (t *Tracker) Blacklisted() int {
	n := 0
	for _, node := range t.c.Nodes {
		if node.Blacklisted {
			n++
		}
	}
	return n
}

// blockWeights lazily builds the access-weight map used for weighted
// availability snapshots: each block weighs the number of map tasks that
// read it across the whole workload.
func (t *Tracker) blockWeights() map[dfs.BlockID]float64 {
	if t.weights != nil {
		return t.weights
	}
	w := make(map[dfs.BlockID]float64)
	for _, spec := range t.wl.Jobs {
		f := t.files[spec.File]
		for i := spec.FirstBlock; i < spec.FirstBlock+spec.NumMaps; i++ {
			w[f.Blocks[i]]++
		}
	}
	t.weights = w
	return w
}

// checkAfterEvent runs the invariant checker when enabled, latching the
// first violation and halting the simulation immediately.
func (t *Tracker) checkAfterEvent() {
	if !t.checkEnabled || t.invariantErr != nil {
		return
	}
	if err := t.CheckInvariants(); err != nil {
		t.invariantErr = fmt.Errorf("mapreduce: invariant violated at t=%g: %w", t.c.Eng.Now(), err)
		t.c.Eng.Stop()
	}
}

// OnReplicaAdded implements dfs.ReplicaListener: newly announced replicas
// are indexed by every active job that still has the block pending. Jobs
// are updated independently, so the map iteration order is immaterial.
func (t *Tracker) OnReplicaAdded(b dfs.BlockID, node topology.NodeID) {
	for j := range t.active {
		j.onReplicaAdded(b, node)
	}
}

// OnReplicaRemoved implements dfs.ReplicaListener. Removals need no index
// update: stale entries are verified against the name node and discarded
// lazily at selection time.
func (t *Tracker) OnReplicaRemoved(b dfs.BlockID, node topology.NodeID) {}

// SetHook installs (or replaces) the replication hook. Call before Run.
// It exists because the DARE manager derives its budget from the bytes the
// tracker loads into the DFS, so the natural order is NewTracker →
// NewManager → SetHook.
func (t *Tracker) SetHook(hook ReplicationHook) { t.hook = hook }

// Files exposes the DFS files backing the workload, index-aligned with
// workload.Files.
func (t *Tracker) Files() []*dfs.File { return t.files }

// Cluster exposes the underlying cluster.
func (t *Tracker) Cluster() *Cluster { return t.c }

// SpeculativeLaunches reports how many backup attempts were started.
func (t *Tracker) SpeculativeLaunches() int { return t.specLaunched }

// Run replays the whole workload and returns per-job results sorted by
// job ID. It is single-use.
func (t *Tracker) Run() ([]Result, error) {
	eng := t.c.Eng
	for _, spec := range t.wl.Jobs {
		spec := spec
		eng.DeferAt(spec.Arrival, func() { t.arrive(spec) })
	}
	for _, pf := range t.failures {
		pf := pf
		if int(pf.node) < 0 || int(pf.node) >= len(t.c.Nodes) {
			return nil, fmt.Errorf("mapreduce: failure scheduled for invalid node %d", pf.node)
		}
		eng.DeferAt(pf.at, func() { t.failNode(t.c.Nodes[pf.node]) })
	}
	for _, pr := range t.recoveries {
		pr := pr
		if int(pr.node) < 0 || int(pr.node) >= len(t.c.Nodes) {
			return nil, fmt.Errorf("mapreduce: recovery scheduled for invalid node %d", pr.node)
		}
		eng.DeferAt(pr.at, func() { t.recoverNode(t.c.Nodes[pr.node]) })
	}
	for _, prf := range t.rackFailures {
		prf := prf
		if prf.rack < 0 || prf.rack >= t.c.racks {
			return nil, fmt.Errorf("mapreduce: failure scheduled for invalid rack %d", prf.rack)
		}
		eng.DeferAt(prf.at, func() { t.failRack(prf.rack) })
	}
	// De-synchronized heartbeats, like real clusters.
	interval := t.c.Profile.HeartbeatInterval
	for i, node := range t.c.Nodes {
		node := node
		phase := interval * float64(i) / float64(len(t.c.Nodes))
		tk := sim.NewTicker(eng, interval, func() { t.heartbeat(node) })
		tk.Start(phase)
		t.tickers = append(t.tickers, tk)
	}
	// Generous runaway guard: a workload that cannot finish in simulated
	// years indicates a scheduling bug; surface it instead of spinning.
	horizon := t.lastArrival() + 1e7
	eng.RunUntil(horizon)
	for _, tk := range t.tickers {
		tk.Stop()
	}
	// Background re-replication outlives the workload: drain the repair
	// queue so post-run state reflects a healed DFS. The loop re-reads the
	// bound because the detection event itself extends it.
	for t.invariantErr == nil && t.lastRepairAt > eng.Now() {
		eng.RunUntil(t.lastRepairAt + 1e-9)
	}
	if t.invariantErr != nil {
		return nil, t.invariantErr
	}
	if t.completed != t.totalJobs {
		return nil, fmt.Errorf("mapreduce: only %d/%d jobs completed by horizon %g", t.completed, t.totalJobs, horizon)
	}
	sort.Slice(t.results, func(i, j int) bool { return t.results[i].ID < t.results[j].ID })
	return t.results, nil
}

func (t *Tracker) lastArrival() float64 {
	if len(t.wl.Jobs) == 0 {
		return 0
	}
	return t.wl.Jobs[len(t.wl.Jobs)-1].Arrival
}

func (t *Tracker) arrive(spec workload.Job) {
	j := NewJob(spec, t.files[spec.File], t.c)
	if t.linearScan {
		j.linearScan = true
	}
	t.active[j] = true
	t.sel.AddJob(j)
}

// heartbeat offers node's free slots to the scheduler, Hadoop-style: the
// task tracker reports in, the job tracker hands back tasks. Slots left
// idle by the scheduler may speculate on stragglers.
func (t *Tracker) heartbeat(node *Node) {
	if node.Blacklisted {
		return // reports in, gets no work (Hadoop blacklist semantics)
	}
	now := t.c.Eng.Now()
	for node.FreeMapSlots > 0 {
		j, b, ok := t.sel.SelectMapTask(node.ID, now)
		if !ok {
			break
		}
		t.launchMap(node, j, b)
	}
	if t.c.Profile.SpeculativeExecution {
		for node.FreeMapSlots > 0 {
			g := t.findStraggler(node)
			if g == nil {
				break
			}
			t.specLaunched++
			t.launchAttempt(node, g)
		}
	}
	for node.FreeReduceSlots > 0 {
		j, ok := t.sel.SelectReduceTask(node.ID, now)
		if !ok {
			break
		}
		t.launchReduce(node, j)
	}
}

// classify determines the locality level of running block b on node.
func (t *Tracker) classify(b dfs.BlockID, node topology.NodeID) Locality {
	if t.c.NN.HasReplica(b, node) {
		return NodeLocal
	}
	rack := t.c.Topo.Rack(node)
	inRack := false
	t.c.NN.ForEachLocation(b, func(loc topology.NodeID, _ dfs.ReplicaKind) bool {
		if t.c.Topo.Rack(loc) == rack {
			inRack = true
			return false
		}
		return true
	})
	if inRack {
		return RackLocal
	}
	return Remote
}

// launchMap starts the first attempt of a new map task (attempt group).
func (t *Tracker) launchMap(node *Node, j *Job, b dfs.BlockID) {
	g := &taskGroup{job: j, block: b, started: t.c.Eng.Now(), recs: make(map[*taskRec]bool, 1)}
	if t.c.Profile.SpeculativeExecution {
		t.specGroups = append(t.specGroups, g)
	}
	t.launchAttempt(node, g)
}

// launchAttempt starts one attempt (original or speculative backup) of the
// group's map task on node.
func (t *Tracker) launchAttempt(node *Node, g *taskGroup) {
	j := g.job
	b := g.block
	blk := t.c.NN.Block(b)
	loc := t.classify(b, node.ID)
	local := loc == NodeLocal

	// DARE hook: "if a map task is scheduled" (Algorithms 1 and 2) —
	// speculative attempts are scheduled map tasks too.
	if t.hook != nil {
		t.hook.OnMapTask(node.ID, b, blk.File, blk.Size, local)
	}

	var read float64
	if local {
		read = t.c.LocalReadTime(node.ID, blk.Size)
	} else {
		var err error
		read, _, err = t.c.RemoteReadTime(b, node.ID, blk.Size)
		if err != nil {
			// No replica reachable (e.g. all replicas lost to failures):
			// model a cold-storage restore at half disk speed so the run
			// degrades instead of hanging.
			read = t.c.LocalReadTime(node.ID, blk.Size) * 2
		} else {
			node.ActiveRemoteReads++
			t.c.Eng.Defer(read, func() { node.ActiveRemoteReads-- })
		}
	}
	dur := (math.Max(read, j.Spec.CPUPerTask) + t.c.Profile.TaskOverhead) * t.c.taskNoise()

	if !local {
		j.remoteBytes += blk.Size
	}
	node.FreeMapSlots--
	j.runningMaps++
	if j.firstTaskTime < 0 {
		j.firstTaskTime = t.c.Eng.Now()
	}
	rec := &taskRec{job: j, block: b, isMap: true, group: g, node: node, loc: loc, dur: dur}
	g.recs[rec] = true
	rec.ev = t.c.Eng.Schedule(dur, func() { t.completeAttempt(rec) })
	t.track(node, rec)
}

// completeAttempt finishes the winning attempt of a map-task group,
// killing any sibling backup still running.
func (t *Tracker) completeAttempt(rec *taskRec) {
	g := rec.group
	t.untrack(rec.node, rec)
	delete(g.recs, rec)
	rec.node.FreeMapSlots++
	g.job.runningMaps--
	if g.done {
		return
	}
	// Injected task failure (flaky disk/JVM): the attempt's work is
	// discarded. The node takes the blame; the input retries with backoff
	// unless a sibling attempt is still running elsewhere.
	if t.taskFailProb > 0 && t.taskFailG.Float64() < t.taskFailProb {
		t.noteNodeTaskFailure(rec.node)
		if len(g.recs) == 0 {
			t.requeueOrFail(g.job, g.block)
		}
		return
	}
	g.done = true
	// Kill siblings (at most one backup; sorted iteration for
	// determinism regardless).
	siblings := make([]*taskRec, 0, len(g.recs))
	for s := range g.recs {
		siblings = append(siblings, s)
	}
	sort.Slice(siblings, func(i, j int) bool { return siblings[i].node.ID < siblings[j].node.ID })
	for _, s := range siblings {
		t.c.Eng.Cancel(s.ev)
		t.untrack(s.node, s)
		s.node.FreeMapSlots++
		g.job.runningMaps--
		delete(g.recs, s)
	}
	t.finishMap(g.job, rec.loc, rec.dur)
}

// findStraggler returns the oldest running map-task group that qualifies
// for a speculative backup on node, compacting finished groups as it
// scans.
func (t *Tracker) findStraggler(node *Node) *taskGroup {
	factor := t.c.Profile.SpeculativeFactor
	if factor <= 1 {
		factor = 1.5
	}
	now := t.c.Eng.Now()
	kept := t.specGroups[:0]
	var found *taskGroup
	for _, g := range t.specGroups {
		if g.done || len(g.recs) == 0 {
			continue // completed, or all attempts died with the node
		}
		kept = append(kept, g)
		if found != nil {
			continue
		}
		j := g.job
		if j.completedMaps < 3 || len(g.recs) != 1 {
			continue // need a duration estimate; one backup max
		}
		mean := j.mapTimeSum / float64(j.completedMaps)
		if now-g.started <= factor*mean {
			continue
		}
		onThisNode := false
		for r := range g.recs {
			if r.node == node {
				onThisNode = true
			}
		}
		if !onThisNode {
			found = g
		}
	}
	t.specGroups = kept
	return found
}

// track and untrack maintain the in-flight task set used by failure
// injection.
func (t *Tracker) track(node *Node, rec *taskRec) {
	set := t.inflight[node]
	if set == nil {
		set = make(map[*taskRec]bool)
		t.inflight[node] = set
	}
	set[rec] = true
}

func (t *Tracker) untrack(node *Node, rec *taskRec) {
	if set := t.inflight[node]; set != nil {
		delete(set, rec)
	}
}

func (t *Tracker) finishMap(j *Job, loc Locality, dur float64) {
	j.completedMaps++
	j.mapTimeSum += dur
	switch loc {
	case NodeLocal:
		j.localMaps++
	case RackLocal:
		j.rackMaps++
	default:
		j.remoteMaps++
	}
	if j.MapsDone() && j.Spec.NumReduces == 0 {
		t.finishJob(j)
	}
}

func (t *Tracker) launchReduce(node *Node, j *Job) {
	node.FreeReduceSlots--
	j.pendingReduces--
	j.runningReduces++
	write := t.c.OutputWriteTime(node.ID, j.outputBlocksPerReduce())
	dur := (j.Spec.ReduceTime + write + t.c.Profile.TaskOverhead) * t.c.taskNoise()
	j.outputBytes += j.outputNetworkBytesPerReduce(t.c.Profile)
	rec := &taskRec{job: j, isMap: false}
	rec.ev = t.c.Eng.Schedule(dur, func() {
		t.untrack(node, rec)
		t.finishReduce(node, j)
	})
	t.track(node, rec)
}

func (t *Tracker) finishReduce(node *Node, j *Job) {
	node.FreeReduceSlots++
	j.runningReduces--
	j.finishedReduces++
	if j.MapsDone() && j.finishedReduces == j.Spec.NumReduces {
		t.finishJob(j)
	}
}

func (t *Tracker) finishJob(j *Job) {
	if j.finished {
		return
	}
	j.finished = true
	j.finishTime = t.c.Eng.Now()
	delete(t.active, j)
	t.sel.RemoveJob(j)
	t.results = append(t.results, j.result())
	t.completed++
	if t.completed == t.totalJobs {
		t.c.Eng.Stop()
	}
}
