// Package mapreduce models the compute half of a Hadoop-style cluster
// (§II-A): a job tracker receiving periodic heartbeats from per-node task
// trackers, map tasks bound to input blocks (one map per block), reduce
// tasks that run after the map phase, and a transfer cost model that makes
// remote (non-data-local) reads pay the network price measured in §II-B.
//
// The scheduler is pluggable (FIFO or Fair with delay scheduling live in
// internal/scheduler); DARE observes task placements through the cluster
// event bus and is otherwise invisible to the scheduler, preserving the
// paper's scheduler-agnostic design.
package mapreduce

import (
	"fmt"
	"math"

	"dare/internal/config"
	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/sim"
	"dare/internal/stats"
	"dare/internal/topology"
)

// Node is the runtime state of one worker: its sampled I/O capabilities
// and its slot occupancy.
type Node struct {
	ID topology.NodeID
	// DiskBW and NetBW are this node's sampled bandwidths in MB/s; the
	// per-node draw models hardware spread (huge on EC2, Table II).
	DiskBW, NetBW float64
	// FreeMapSlots and FreeReduceSlots are the currently available slots.
	FreeMapSlots, FreeReduceSlots int
	// ActiveRemoteReads counts in-flight remote fetches targeting this
	// node; concurrent fetches share the NIC.
	ActiveRemoteReads int
	// SlowFactor and DiskFactor model gray degradation (1 = healthy).
	// SlowFactor multiplies task service time (a struggling JVM, CPU
	// contention); DiskFactor divides effective local disk bandwidth (a
	// dying disk retrying sectors). Both stay exactly 1.0 unless the gray
	// injector degrades the node, so healthy runs are bit-identical.
	SlowFactor, DiskFactor float64
	// Up is false once the node has been failed; a downed node stops
	// heartbeating and receives no tasks or replicas.
	Up bool
	// Blacklisted marks a node the job tracker refuses to schedule on after
	// too many task failures there (Hadoop's task-tracker blacklist). The
	// node keeps heartbeating and its replicas stay valid; recovery
	// (re-registration) clears the flag.
	Blacklisted bool
}

// Cluster bundles the simulation substrate: engine, topology, name node,
// per-node state, and the calibrated cost model.
type Cluster struct {
	Eng     *sim.Engine
	Profile *config.Profile
	Topo    topology.Topology
	NN      *dfs.NameNode
	Nodes   []*Node
	// Bus is the cluster's event spine: the name node and the tracker
	// publish on it, and any component may subscribe (see internal/event).
	// Events are stamped with Eng's clock.
	Bus *event.Bus

	rttG   *stats.RNG
	noiseG *stats.RNG
	noise  stats.Dist
	// racks is the number of racks in the topology (max rack ID + 1),
	// computed once so per-job rack indices can be sized up front.
	racks int
	// rackOrdinal[n] is node n's dense index within its own rack (the
	// count of same-rack nodes with smaller IDs) and rackSizes[r] the
	// node count of rack r. Heartbeat cohort assignment and the per-rack
	// job locality shards both key off these.
	rackOrdinal []int
	rackSizes   []int
}

// NewCluster builds a cluster from a profile. All randomness (virtual
// placement, per-node bandwidth, task noise) derives from seed.
func NewCluster(p *config.Profile, seed uint64) (*Cluster, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := stats.NewRNG(seed)
	topo := topology.FromProfile(p, g.Split(1))
	nn := dfs.NewNameNode(topo, p.ReplicationFactor, g.Split(2))
	eng := sim.NewEngine()
	bus := event.NewBus(eng.Now)
	nn.SetBus(bus)
	c := &Cluster{
		Eng:     eng,
		Profile: p,
		Topo:    topo,
		NN:      nn,
		Bus:     bus,
		rttG:    g.Split(3),
		noiseG:  g.Split(4),
	}
	if p.TaskNoiseSigma > 0 {
		c.noise = stats.LogNormal{Mu: -p.TaskNoiseSigma * p.TaskNoiseSigma / 2, Sigma: p.TaskNoiseSigma}
	} else {
		c.noise = stats.Constant{V: 1}
	}
	bwG := g.Split(5)
	for i := 0; i < p.Slaves; i++ {
		disk := p.DiskBW.Sample(bwG)
		net := p.NetBW.Sample(bwG)
		if disk <= 1 {
			disk = 1
		}
		if net <= 1 {
			net = 1
		}
		c.Nodes = append(c.Nodes, &Node{
			ID:              topology.NodeID(i),
			DiskBW:          disk,
			NetBW:           net,
			FreeMapSlots:    p.MapSlotsPerNode,
			FreeReduceSlots: p.ReduceSlotsPerNode,
			SlowFactor:      1,
			DiskFactor:      1,
			Up:              true,
		})
		r := topo.Rack(topology.NodeID(i))
		if r >= c.racks {
			c.racks = r + 1
		}
		for len(c.rackSizes) <= r {
			c.rackSizes = append(c.rackSizes, 0)
		}
		c.rackOrdinal = append(c.rackOrdinal, c.rackSizes[r])
		c.rackSizes[r]++
	}
	return c, nil
}

// TotalMapSlots reports the cluster-wide map slot count.
func (c *Cluster) TotalMapSlots() int { return c.Profile.Slaves * c.Profile.MapSlotsPerNode }

// TotalReduceSlots reports the cluster-wide reduce slot count.
func (c *Cluster) TotalReduceSlots() int { return c.Profile.Slaves * c.Profile.ReduceSlotsPerNode }

// taskNoise samples the multiplicative duration noise.
func (c *Cluster) taskNoise() float64 {
	v := c.noise.Sample(c.noiseG)
	if v < 0.2 {
		v = 0.2
	}
	return v
}

// LocalReadTime reports the seconds to read size bytes from node's local
// disk. A disk-degraded node reads proportionally slower (DiskFactor is
// exactly 1.0 on healthy nodes, so the multiplication is bit-exact).
func (c *Cluster) LocalReadTime(node topology.NodeID, size int64) float64 {
	return float64(size) * c.Nodes[node].DiskFactor / (c.Nodes[node].DiskBW * config.MB)
}

// chooseSource picks the replica source for a remote read: the location
// with the fewest hops from dst (ties broken by lowest node ID for
// determinism). ok is false when the block has no replica.
func (c *Cluster) chooseSource(b dfs.BlockID, dst topology.NodeID) (topology.NodeID, bool) {
	return c.chooseSourceExcluding(b, dst, nil)
}

// chooseSourceExcluding is chooseSource with a (possibly nil) set of
// sources to skip — the gray read path excludes replicas it has already
// found corrupt or already has in flight as a hedge.
func (c *Cluster) chooseSourceExcluding(b dfs.BlockID, dst topology.NodeID, excluded map[topology.NodeID]bool) (topology.NodeID, bool) {
	best := topology.NodeID(-1)
	bestHops := math.MaxInt32
	// Iterate the location map directly (no allocation); the (hops, node
	// ID) tie-break is a total order, so the winner is independent of map
	// iteration order.
	c.NN.ForEachLocation(b, func(src topology.NodeID, _ dfs.ReplicaKind) bool {
		if src == dst || excluded[src] {
			return true
		}
		if h := c.Topo.Hops(src, dst); h < bestHops || (h == bestHops && src < best) {
			bestHops = h
			best = src
		}
		return true
	})
	return best, best >= 0
}

// RemoteReadTime reports the seconds to fetch size bytes of block b into
// dst from its best replica source, accounting for path bandwidth
// (oversubscription beyond 2 hops), RTT, and NIC sharing with other
// in-flight fetches at dst. The second return is the chosen source.
func (c *Cluster) RemoteReadTime(b dfs.BlockID, dst topology.NodeID, size int64) (float64, topology.NodeID, error) {
	return c.RemoteReadTimeExcluding(b, dst, size, nil)
}

// RemoteReadTimeExcluding is RemoteReadTime restricted to sources outside
// the excluded set (the gray read path's retry and hedge fallbacks).
func (c *Cluster) RemoteReadTimeExcluding(b dfs.BlockID, dst topology.NodeID, size int64, excluded map[topology.NodeID]bool) (float64, topology.NodeID, error) {
	src, ok := c.chooseSourceExcluding(b, dst, excluded)
	if !ok {
		return 0, 0, fmt.Errorf("mapreduce: block %d has no remote replica for node %d", b, dst)
	}
	bw := math.Min(c.Nodes[src].NetBW, c.Nodes[dst].NetBW)
	hops := c.Topo.Hops(src, dst)
	for extra := hops - 2; extra > 0; extra -= 2 {
		bw *= c.Profile.HopBWFactor
	}
	// The destination NIC is shared with other concurrent fetches.
	share := 1 + c.Nodes[dst].ActiveRemoteReads
	bw /= float64(share)
	if bw < 0.5 {
		bw = 0.5
	}
	rtt := c.Topo.SampleRTT(src, dst, c.rttG)
	return float64(size)/(bw*config.MB) + rtt, src, nil
}

// OutputWriteTime reports the seconds a reduce task on node spends writing
// `blocks` output blocks through the HDFS replication pipeline: the
// pipeline throughput is bounded by the slowest of the local disk and the
// NIC (the two downstream replicas stream in parallel behind it). A
// disk-degraded node writes proportionally slower.
func (c *Cluster) OutputWriteTime(node topology.NodeID, blocks float64) float64 {
	if blocks <= 0 {
		return 0
	}
	bw := math.Min(c.Nodes[node].DiskBW/c.Nodes[node].DiskFactor, c.Nodes[node].NetBW*c.Profile.HopBWFactor)
	if bw < 0.5 {
		bw = 0.5
	}
	return blocks * float64(c.Profile.BlockSizeBytes()) / (bw * config.MB)
}

// DedicatedRunTime reports the analytic running time of a job on an empty
// cluster with 100% data locality — the paper's slowdown denominator
// (§V-A): map waves at local read speed plus reduce waves.
func (c *Cluster) DedicatedRunTime(numMaps int, cpuPerTask float64, numReduces int, reduceTime float64, outputBlocks int) float64 {
	meanDisk := c.Profile.DiskBW.Mean()
	read := float64(c.Profile.BlockSizeBytes()) / (meanDisk * config.MB)
	mapTime := math.Max(read, cpuPerTask) + c.Profile.TaskOverhead
	waves := math.Ceil(float64(numMaps) / float64(c.TotalMapSlots()))
	t := waves * mapTime
	if numReduces > 0 {
		rWaves := math.Ceil(float64(numReduces) / float64(c.TotalReduceSlots()))
		writeBW := math.Min(meanDisk, c.Profile.NetBW.Mean()*c.Profile.HopBWFactor)
		write := float64(outputBlocks) / float64(numReduces) * float64(c.Profile.BlockSizeBytes()) / (writeBW * config.MB)
		t += rWaves * (reduceTime + write + c.Profile.TaskOverhead)
	}
	// One heartbeat of scheduling latency is inherent even on an idle
	// cluster.
	return t + c.Profile.HeartbeatInterval
}
