package mapreduce

import (
	"sort"

	"dare/internal/dfs"
	"dare/internal/sim"
	"dare/internal/topology"
)

// Failure injection: the tracker can kill data nodes mid-run. A failed
// node stops heartbeating, its running tasks die and are re-queued (as the
// Hadoop job tracker does on task-tracker timeout), its replicas vanish
// from the name node, and — unless repair is disabled — the name node
// re-replicates under-replicated blocks onto survivors after a detection
// delay, HDFS-style.

// FailureEvent records the cluster state right after one injected failure.
type FailureEvent struct {
	Time float64
	Node topology.NodeID
	// KilledMaps and KilledReduces count the running tasks that died and
	// were re-queued.
	KilledMaps, KilledReduces int
	// Report is the name node's metadata impact.
	Report dfs.FailureReport
	// AvailableBlocks/TotalBlocks snapshot block availability immediately
	// after the failure, before any repair.
	AvailableBlocks, TotalBlocks int
}

// plannedFailure is a failure registered before Run.
type plannedFailure struct {
	node topology.NodeID
	at   float64
}

// taskRec tracks one in-flight task attempt for cancellation on node
// failure and for speculative-execution bookkeeping.
type taskRec struct {
	job   *Job
	block dfs.BlockID // map tasks only
	isMap bool
	ev    *sim.Event
	// Map-task attempt metadata.
	group *taskGroup
	node  *Node
	loc   Locality
	dur   float64
}

// taskGroup is one logical map task with its (1..2) running attempts.
type taskGroup struct {
	job     *Job
	block   dfs.BlockID
	started float64
	done    bool
	recs    map[*taskRec]bool
}

// ScheduleNodeFailure registers node to fail at simulated time `at`. Call
// before Run. Repairs are scheduled automatically unless DisableRepair was
// called.
func (t *Tracker) ScheduleNodeFailure(node topology.NodeID, at float64) {
	t.failures = append(t.failures, plannedFailure{node: node, at: at})
}

// DisableRepair turns off automatic re-replication after failures (used
// by availability experiments that measure the pre-repair state).
func (t *Tracker) DisableRepair() { t.repairDisabled = true }

// FailureEvents returns the recorded failure snapshots, in time order.
func (t *Tracker) FailureEvents() []FailureEvent { return t.failureEvents }

// RepairsDone reports how many block re-replications completed.
func (t *Tracker) RepairsDone() int { return t.repairsDone }

// failNode executes one injected failure.
func (t *Tracker) failNode(node *Node) {
	if !node.Up {
		return
	}
	node.Up = false
	// Stop the node's heartbeat: no new tasks land there.
	for i, n := range t.c.Nodes {
		if n == node && i < len(t.tickers) {
			t.tickers[i].Stop()
		}
	}

	ev := FailureEvent{Time: t.c.Eng.Now(), Node: node.ID}

	// Kill in-flight tasks and requeue their work.
	recs := t.inflight[node]
	ordered := make([]*taskRec, 0, len(recs))
	for r := range recs {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].isMap != ordered[j].isMap {
			return ordered[i].isMap
		}
		return ordered[i].block < ordered[j].block
	})
	for _, r := range ordered {
		t.c.Eng.Cancel(r.ev)
		if r.isMap {
			r.job.runningMaps--
			delete(r.group.recs, r)
			// Requeue only when no sibling attempt survives elsewhere.
			if !r.group.done && len(r.group.recs) == 0 {
				r.job.Requeue(r.block)
			}
			ev.KilledMaps++
		} else {
			r.job.runningReduces--
			r.job.pendingReduces++
			ev.KilledReduces++
		}
	}
	delete(t.inflight, node)

	// Metadata impact + availability snapshot.
	ev.Report = t.c.NN.FailNode(node.ID)
	ev.AvailableBlocks, ev.TotalBlocks = t.c.NN.Availability()
	t.failureEvents = append(t.failureEvents, ev)

	if !t.repairDisabled {
		t.scheduleRepairs()
	}
}

// scheduleRepairs runs one HDFS-style re-replication round: after the
// detection delay (missed heartbeats), under-replicated blocks are copied
// to surviving nodes, staggered to model limited re-replication
// parallelism.
func (t *Tracker) scheduleRepairs() {
	detect := 3 * t.c.Profile.HeartbeatInterval
	if at := t.c.Eng.Now() + detect; at > t.lastRepairAt {
		t.lastRepairAt = at
	}
	t.c.Eng.Defer(detect, func() {
		queue := t.c.NN.UnderReplicated()
		blockTime := float64(t.c.Profile.BlockSizeBytes()) / (t.c.Profile.NetBW.Mean() * float64(1<<20))
		// Two parallel repair streams, each copying one block at a time.
		const streams = 2
		for i, b := range queue {
			b := b
			delay := blockTime * float64(i/streams+1)
			if at := t.c.Eng.Now() + delay; at > t.lastRepairAt {
				t.lastRepairAt = at
			}
			t.c.Eng.Defer(delay, func() { t.repairBlock(b) })
		}
	})
}

func (t *Tracker) repairBlock(b dfs.BlockID) {
	// Re-check: the block may have been repaired or lost meanwhile.
	target, ok := t.c.NN.RepairTarget(b)
	if !ok {
		return
	}
	still := false
	for _, ub := range t.c.NN.UnderReplicated() {
		if ub == b {
			still = true
			break
		}
	}
	if !still {
		return
	}
	if err := t.c.NN.AddPrimaryReplica(b, target); err == nil {
		t.repairsDone++
	}
}
