package mapreduce

import (
	"fmt"
	"sort"

	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/sim"
	"dare/internal/topology"
)

// Failure injection: the tracker can kill data nodes mid-run — singly or a
// whole rack at once (switch failure) — and rejoin them later. A failed
// node stops heartbeating, its running tasks die and are re-queued (as the
// Hadoop job tracker does on task-tracker timeout), its replicas vanish
// from the name node, and — unless repair is disabled — the name node
// re-replicates under-replicated blocks onto survivors after a detection
// delay, HDFS-style. A recovered node re-registers empty: its heartbeat
// ticker restarts, its slots return to the scheduler, and it becomes a
// placement/repair target again.
//
// Task attempts are bounded: a map input whose attempts keep dying is
// re-queued with exponential backoff and, past the attempt limit, fails its
// whole job (mapred.map.max.attempts semantics). Nodes that keep failing
// attempts are blacklisted until they recover.

// FailureEvent records the cluster state right after one injected failure.
type FailureEvent struct {
	Time float64
	Node topology.NodeID
	// Rack is the rack index when this failure was part of a whole-rack
	// (switch) failure, -1 for an independent single-node failure.
	Rack int
	// KilledMaps and KilledReduces count the running tasks that died and
	// were re-queued.
	KilledMaps, KilledReduces int
	// Report is the name node's metadata impact.
	Report dfs.FailureReport
	// AvailableBlocks/TotalBlocks snapshot block availability immediately
	// after the failure, before any repair.
	AvailableBlocks, TotalBlocks int
	// WeightedAvailability snapshots the access-weighted availability at
	// the same instant (§IV-B's availability claim is about hot data).
	WeightedAvailability float64
	// Backlog is the repair queue depth (under-replicated blocks) right
	// after the failure.
	Backlog int
	// Flap marks a false-dead declaration (gray failure): the node was
	// never actually down and rejoins shortly with its disk intact.
	Flap bool
}

// RecoveryEvent records the cluster state right after one node rejoin.
type RecoveryEvent struct {
	Time float64
	Node topology.NodeID
	// Backlog is the repair queue depth right after the rejoin. A rejoin
	// can *grow* the queue: with more nodes up, min(replication, up) rises.
	Backlog int
	// WeightedAvailability at the rejoin (monotone non-increasing across a
	// run when rejoins are empty; a flap rejoin restores replicas and can
	// raise it).
	WeightedAvailability float64
	// Restored counts the stale replicas reconciled back into the registry
	// on a flap rejoin (0 for a crash recovery: those re-register empty).
	Restored int
}

// plannedFailure is a failure registered before Run.
type plannedFailure struct {
	node topology.NodeID
	at   float64
}

// plannedRecovery is a node rejoin registered before Run.
type plannedRecovery struct {
	node topology.NodeID
	at   float64
}

// plannedRackFailure is a whole-rack failure registered before Run.
type plannedRackFailure struct {
	rack int
	at   float64
}

// taskRec tracks one in-flight task attempt for cancellation on node
// failure and for speculative-execution bookkeeping.
type taskRec struct {
	job   *Job
	block dfs.BlockID // map tasks only
	isMap bool
	ev    *sim.Event
	// Map-task attempt metadata.
	group *taskGroup
	node  *Node
	loc   Locality
	dur   float64
}

// taskGroup is one logical map task with its (1..2) running attempts.
type taskGroup struct {
	job     *Job
	block   dfs.BlockID
	started float64
	done    bool
	recs    map[*taskRec]bool
}

// ScheduleNodeFailure registers node to fail at simulated time `at`. Call
// before Run. Repairs are scheduled automatically unless DisableRepair was
// called.
func (t *Tracker) ScheduleNodeFailure(node topology.NodeID, at float64) {
	t.failures = append(t.failures, plannedFailure{node: node, at: at})
}

// ScheduleNodeRecovery registers node to rejoin at simulated time `at`.
// Call before Run. Recovering an up node at fire time is a no-op.
func (t *Tracker) ScheduleNodeRecovery(node topology.NodeID, at float64) {
	t.recoveries = append(t.recoveries, plannedRecovery{node: node, at: at})
}

// ScheduleRackFailure registers every node of rack that is still up at
// simulated time `at` to fail together (switch failure). Call before Run.
func (t *Tracker) ScheduleRackFailure(rack int, at float64) {
	t.rackFailures = append(t.rackFailures, plannedRackFailure{rack: rack, at: at})
}

// DisableRepair turns off automatic re-replication after failures (used
// by availability experiments that measure the pre-repair state).
func (t *Tracker) DisableRepair() { t.repairDisabled = true }

// FailureEvents returns the recorded failure snapshots, in time order.
func (t *Tracker) FailureEvents() []FailureEvent { return t.failureEvents }

// RecoveryEvents returns the recorded rejoin snapshots, in time order.
func (t *Tracker) RecoveryEvents() []RecoveryEvent { return t.recoveryEvents }

// RepairsDone reports how many block re-replications completed.
func (t *Tracker) RepairsDone() int { return t.repairsDone }

// scheduleInjectedChurn registers every planned failure, recovery, and
// rack failure with the engine. Run calls it once, before the heartbeat
// tickers start.
func (t *Tracker) scheduleInjectedChurn() error {
	eng := t.c.Eng
	for _, pf := range t.failures {
		pf := pf
		if int(pf.node) < 0 || int(pf.node) >= len(t.c.Nodes) {
			return fmt.Errorf("mapreduce: failure scheduled for invalid node %d", pf.node)
		}
		eng.DeferAt(pf.at, func() { t.failNode(t.c.Nodes[pf.node]) })
	}
	for _, pr := range t.recoveries {
		pr := pr
		if int(pr.node) < 0 || int(pr.node) >= len(t.c.Nodes) {
			return fmt.Errorf("mapreduce: recovery scheduled for invalid node %d", pr.node)
		}
		eng.DeferAt(pr.at, func() { t.recoverNode(t.c.Nodes[pr.node]) })
	}
	for _, prf := range t.rackFailures {
		prf := prf
		if prf.rack < 0 || prf.rack >= t.c.racks {
			return fmt.Errorf("mapreduce: failure scheduled for invalid rack %d", prf.rack)
		}
		eng.DeferAt(prf.at, func() { t.failRack(prf.rack) })
	}
	return nil
}

// blockWeights lazily builds the access-weight map used for weighted
// availability snapshots: each block weighs the number of map tasks that
// read it across the whole workload.
func (t *Tracker) blockWeights() map[dfs.BlockID]float64 {
	if t.weights != nil {
		return t.weights
	}
	w := make(map[dfs.BlockID]float64)
	for _, spec := range t.wl.Jobs {
		f := t.files[spec.File]
		for i := spec.FirstBlock; i < spec.FirstBlock+spec.NumMaps; i++ {
			w[f.Blocks[i]]++
		}
	}
	t.weights = w
	return w
}

// failNode executes one independent injected failure. The invariant
// checker (when enabled) fires on the NodeFail event the name node
// publishes inside killNode.
func (t *Tracker) failNode(node *Node) {
	if !node.Up {
		return
	}
	if t.master.down {
		// Data plane only: the node really dies — its tasks are lost and
		// its heartbeats stop — but no master is there to declare it dead,
		// so the metadata scrub and repair wait for recovery.
		t.killNodeDataPlane(node)
		t.master.pending = append(t.master.pending, pendingNodeEvent{node: node.ID})
		t.master.unobserved[node.ID] = true
		return
	}
	t.killNode(node, -1)
	if !t.repairDisabled {
		t.scheduleRepairs()
	}
}

// failRack executes one switch failure: every live node of the rack dies
// in the same instant, then a single repair round covers all of them.
func (t *Tracker) failRack(rack int) {
	for _, node := range t.c.Nodes { // Nodes is ID-ordered: deterministic
		if node.Up && t.c.Topo.Rack(node.ID) == rack {
			t.killNode(node, rack)
		}
	}
	if !t.repairDisabled {
		t.scheduleRepairs()
	}
}

// killNode takes one node down: heartbeat stops, in-flight tasks die and
// re-queue (with attempt accounting), metadata is scrubbed, and the event
// is recorded. rack tags rack-correlated failures (-1 for independent).
func (t *Tracker) killNode(node *Node, rack int) {
	ev := FailureEvent{Time: t.c.Eng.Now(), Node: node.ID, Rack: rack}
	ev.KilledMaps, ev.KilledReduces = t.killNodeDataPlane(node)

	// Metadata impact + availability snapshot.
	ev.Report = t.c.NN.FailNode(node.ID)
	ev.AvailableBlocks, ev.TotalBlocks = t.c.NN.Availability()
	ev.WeightedAvailability = t.c.NN.WeightedAvailability(t.blockWeights())
	ev.Backlog = len(t.c.NN.UnderReplicated())
	t.failureEvents = append(t.failureEvents, ev)
}

// killNodeDataPlane takes the node's process down — heartbeats stop, its
// in-flight attempts die and re-queue — without touching the name node.
// killNode layers the metadata scrub and snapshot on top; during a master
// outage the scrub is deferred until the master recovers (failNode queues a
// pending event instead). Returns the killed task counts.
func (t *Tracker) killNodeDataPlane(node *Node) (killedMaps, killedReduces int) {
	node.Up = false
	// Stop the node's heartbeat: no new tasks land there. The driver is
	// nil before Run and its Stop is a no-op then.
	t.hb.Stop(node.ID)

	// Kill in-flight tasks and requeue their work.
	recs := t.inflight[node]
	ordered := make([]*taskRec, 0, len(recs))
	for r := range recs {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].isMap != ordered[j].isMap {
			return ordered[i].isMap
		}
		if ordered[i].block != ordered[j].block {
			return ordered[i].block < ordered[j].block
		}
		// Reduce recs all carry the zero block: order them by job so the
		// published task-fail sequence is deterministic (the bookkeeping
		// itself is order-independent, but the trace observes the order).
		return ordered[i].job.Spec.ID < ordered[j].job.Spec.ID
	})
	for _, r := range ordered {
		t.c.Eng.Cancel(r.ev)
		fe := event.New(event.TaskFail)
		fe.Job = int32(r.job.Spec.ID)
		fe.Node = int32(node.ID)
		fe.Rack = int32(t.c.Topo.Rack(node.ID))
		// Flag stays false: a node death is not the node's "fault" in
		// blacklist terms (matching Hadoop — only flaky-attempt blame
		// counts toward the blacklist).
		if r.isMap {
			r.job.runningMaps--
			delete(r.group.recs, r)
			fe.Block = int64(r.block)
			// Aux=1 asks the failure handler to requeue: no sibling
			// attempt survives elsewhere.
			if !r.group.done && len(r.group.recs) == 0 {
				fe.Aux = 1
			}
			killedMaps++
		} else {
			r.job.runningReduces--
			r.job.pendingReduces++
			killedReduces++
		}
		t.bus.Publish(fe)
	}
	delete(t.inflight, node)
	return killedMaps, killedReduces
}

// recoverNode executes one scheduled rejoin: HDFS-style re-registration.
// The node comes back empty (the name node already scrubbed its replicas),
// its slots return to the scheduler, its heartbeat ticker restarts, and any
// blacklist verdict is forgiven. A repair round follows because a rejoin
// can both enable repairs that had no target and raise the replication
// floor min(replication, up nodes).
func (t *Tracker) recoverNode(node *Node) {
	if t.master.down {
		if node.Up {
			return
		}
		// The node boots and idles: slots and heartbeats return, but the
		// master registration waits for recovery.
		node.Up = true
		node.FreeMapSlots = t.c.Profile.MapSlotsPerNode
		node.FreeReduceSlots = t.c.Profile.ReduceSlotsPerNode
		node.SlowFactor, node.DiskFactor = 1, 1
		t.hb.Resume(node.ID)
		t.master.pending = append(t.master.pending, pendingNodeEvent{node: node.ID, recover: true})
		t.master.unobserved[node.ID] = true
		return
	}
	if node.Up || !t.c.NN.NodeFailed(node.ID) {
		return // up, or tracker and name node views diverged (invariant check will flag it)
	}
	node.Up = true
	node.FreeMapSlots = t.c.Profile.MapSlotsPerNode
	node.FreeReduceSlots = t.c.Profile.ReduceSlotsPerNode
	// A restarted node comes back healthy: any gray degradation ends with
	// the old process (both factors are already 1 unless the gray injector
	// ran, so this is golden-safe).
	node.SlowFactor, node.DiskFactor = 1, 1
	// ActiveRemoteReads is intentionally left alone: pending fetch-end
	// events still fire and decrement it.
	// The rejoining node falls back into its original heartbeat cadence
	// (next beat at its next grid instant), matching how a restarted task
	// tracker re-syncs to the job tracker's reporting schedule.
	t.hb.Resume(node.ID)
	// Re-register with the name node last: its NodeRecover event then
	// finds the tracker and metadata views already consistent — the
	// failure handler forgives the blacklist and the invariant checker
	// runs during this publish.
	if err := t.c.NN.RecoverNode(node.ID); err != nil {
		return // unreachable: guarded above
	}
	t.recoveryEvents = append(t.recoveryEvents, RecoveryEvent{
		Time:                 t.c.Eng.Now(),
		Node:                 node.ID,
		Backlog:              len(t.c.NN.UnderReplicated()),
		WeightedAvailability: t.c.NN.WeightedAvailability(t.blockWeights()),
	})
	if !t.repairDisabled {
		t.scheduleRepairs()
	}
}

// scheduleRepairs runs one HDFS-style re-replication round: after the
// detection delay (missed heartbeats), under-replicated blocks are copied
// to surviving nodes, staggered to model limited re-replication
// parallelism. Blocks already queued by an overlapping earlier round are
// skipped — a second failure during the detection window must not
// double-copy them.
func (t *Tracker) scheduleRepairs() {
	detect := 3 * t.c.Profile.HeartbeatInterval
	if at := t.c.Eng.Now() + detect; at > t.lastRepairAt {
		t.lastRepairAt = at
	}
	t.c.Eng.DeferTag(detect, repairScanTag{}, t.repairScan)
}

// repairScan is the deferred detection round of scheduleRepairs.
func (t *Tracker) repairScan() {
	queue := t.c.NN.UnderReplicated()
	// Two parallel repair streams, each copying one block at a time.
	const streams = 2
	slot := 0
	for _, b := range queue {
		if t.repairInFlight[b] {
			continue
		}
		t.repairInFlight[b] = true
		delay := t.repairBlockTime() * float64(slot/streams+1)
		slot++
		t.deferRepair(b, delay)
	}
}

// repairBlockTime is the modelled copy time of one block at mean network
// bandwidth.
func (t *Tracker) repairBlockTime() float64 {
	return float64(t.c.Profile.BlockSizeBytes()) / (t.c.Profile.NetBW.Mean() * float64(1<<20))
}

// deferRepair schedules repairBlock(b) after delay, extending the drain
// bound.
func (t *Tracker) deferRepair(b dfs.BlockID, delay float64) {
	if at := t.c.Eng.Now() + delay; at > t.lastRepairAt {
		t.lastRepairAt = at
	}
	t.c.Eng.DeferTag(delay, repairBlockTag{b: b}, func() { t.repairBlock(b, 0) })
}

// repairBlock copies one replica of b onto a fresh node, if b still needs
// it. A block short by more than one replica (rack failure) chains another
// copy rather than waiting for a future failure's repair round. If the
// master is down when the copy would register, the stream retries with
// capped exponential backoff (outageRetry counts consecutive retries).
func (t *Tracker) repairBlock(b dfs.BlockID, outageRetry int) {
	delete(t.repairInFlight, b)
	if t.master.down {
		t.repairInFlight[b] = true
		delay := t.masterRetryDelay(outageRetry)
		if at := t.c.Eng.Now() + delay; at > t.lastRepairAt {
			t.lastRepairAt = at
		}
		t.c.Eng.DeferTag(delay, repairBlockTag{b: b, retry: outageRetry + 1},
			func() { t.repairBlock(b, outageRetry+1) })
		return
	}
	if !t.c.NN.IsUnderReplicated(b) {
		return // repaired by a concurrent stream, or lost entirely
	}
	target, ok := t.c.NN.RepairTarget(b)
	if !ok {
		return
	}
	if err := t.c.NN.AddPrimaryReplica(b, target); err != nil {
		return
	}
	t.repairsDone++
	if t.c.NN.IsUnderReplicated(b) {
		t.repairInFlight[b] = true
		t.deferRepair(b, t.repairBlockTime())
	}
}
