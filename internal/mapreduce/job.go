package mapreduce

import (
	"dare/internal/config"
	"dare/internal/dfs"
	"dare/internal/topology"
	"dare/internal/workload"
)

// Locality classifies where a map task ran relative to its input block.
type Locality int

const (
	// NodeLocal: the input block has a replica on the executing node.
	NodeLocal Locality = iota
	// RackLocal: a replica exists in the executing node's rack.
	RackLocal
	// Remote: the nearest replica is off-rack.
	Remote
)

// String implements fmt.Stringer.
func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "node-local"
	case RackLocal:
		return "rack-local"
	default:
		return "remote"
	}
}

// pendingRef identifies one pending map input: the block and the sequence
// number it was (last) enqueued under. Sequence numbers make lazy deletion
// possible: a ref whose seq no longer matches the block's current entry in
// pendingSeq is stale and is discarded when encountered.
type pendingRef struct {
	seq uint64
	b   dfs.BlockID
}

// blockHeap is a hand-rolled binary min-heap of pendingRefs ordered by
// seq. Because pending blocks are enqueued in file order (and requeues get
// fresh, higher seqs), the minimum live seq in a heap is exactly the block
// a linear scan of the pending list would find first — which is what keeps
// the indexed selection byte-identical to the original scan.
type blockHeap []pendingRef

func (h *blockHeap) push(e pendingRef) {
	*h = append(*h, e)
	h.siftUp(len(*h) - 1)
}

func (h blockHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].seq <= h[i].seq {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (h blockHeap) siftDown(i int) {
	n := len(h)
	for {
		small := i
		if l := 2*i + 1; l < n && h[l].seq < h[small].seq {
			small = l
		}
		if r := 2*i + 2; r < n && h[r].seq < h[small].seq {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

func (h blockHeap) peek() pendingRef { return h[0] }

func (h *blockHeap) pop() pendingRef {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	(*h).siftDown(0)
	return top
}

// remove deletes every entry for (b, seq) from h and restores the heap
// property with a bottom-up heapify. O(len(h)), but it runs only on the
// replica-removal path (evictions, failures, balancer moves), never on
// selection. Pop order over the remaining live entries is unchanged: a
// min-heap's pop sequence depends only on its multiset of seqs.
func (h *blockHeap) remove(b dfs.BlockID, seq uint64) {
	s := *h
	kept := s[:0]
	for _, e := range s {
		if e.b != b || e.seq != seq {
			kept = append(kept, e)
		}
	}
	if len(kept) == len(s) {
		return
	}
	*h = kept
	for i := len(kept)/2 - 1; i >= 0; i-- {
		kept.siftDown(i)
	}
}

// Job is the runtime state of one trace job inside the cluster.
type Job struct {
	Spec workload.Job
	// File is the DFS file backing the job's input window.
	File *dfs.File

	cluster *Cluster

	// pending holds not-yet-started map inputs in enqueue order, lazily
	// compacted: entries whose seq is no longer current are skipped when
	// popped.
	pending []pendingRef
	// pendingSeq maps each currently pending block to its live seq;
	// presence in this map is the definition of "pending".
	pendingSeq map[dfs.BlockID]uint64
	// nextSeq starts at 1 so the zero value a map lookup returns for a
	// missing block never matches a real seq.
	nextSeq uint64

	// shards[r] holds rack r's slice of the inverted locality index — the
	// per-node heaps for the rack's nodes plus the rack-level heap — that
	// makes TakeLocalBlock/TakeRackLocalBlock/HasLocalBlock O(1)
	// amortized. Shards are allocated lazily on first touch: a job whose
	// input replicas span a handful of racks pays for those racks only,
	// not one heap header per cluster node, which is what lets tens of
	// thousands of nodes coexist with per-job indexes. Heap entries go
	// stale when a block is taken; they are discarded lazily on pop.
	// Replica additions and removals arrive as bus events relayed by the
	// tracker's localityIndexMaintainer: additions push entries, removals
	// drop them eagerly (onReplicaRemoved).
	shards []*jobRackShard
	// rackKeep is scratch for TakeRackLocalBlock: live entries whose only
	// in-rack replica sits on the requesting node are parked here and
	// restored after the search.
	rackKeep []pendingRef

	// linearScan selects the original O(pending) scan path. NewJob turns it
	// on for jobs below indexMinMaps — a scan over a handful of pendingRefs
	// beats heap maintenance and allocates nothing — and the tracker's
	// equivalence-test switch forces it on for every job. Both paths are
	// byte-identical by construction.
	linearScan bool

	runningMaps   int
	completedMaps int

	localMaps     int
	rackMaps      int
	remoteMaps    int
	mapTimeSum    float64
	remoteBytes   int64
	outputBytes   int64
	firstTaskTime float64

	pendingReduces  int
	runningReduces  int
	finishedReduces int

	// attempts counts failed attempts per map input; when a block exhausts
	// the tracker's attempt limit, the whole job fails (Hadoop's
	// mapred.map.max.attempts semantics). Allocated on first failure.
	attempts map[dfs.BlockID]int

	finished   bool
	failed     bool
	finishTime float64
}

// jobRackShard is one rack's slice of a job's inverted locality index:
// byNode[o] is the heap for the rack's node with within-rack ordinal o
// (cluster.rackOrdinal), rack the rack-level heap.
type jobRackShard struct {
	byNode []blockHeap
	rack   blockHeap
}

// rackShard returns rack r's shard, allocating it on first touch.
func (j *Job) rackShard(r int) *jobRackShard {
	sh := j.shards[r]
	if sh == nil {
		sh = &jobRackShard{byNode: make([]blockHeap, j.cluster.rackSizes[r])}
		j.shards[r] = sh
	}
	return sh
}

// nodeHeap returns node's per-node heap within its rack shard.
func (j *Job) nodeHeap(node topology.NodeID) *blockHeap {
	sh := j.rackShard(j.cluster.Topo.Rack(node))
	return &sh.byNode[j.cluster.rackOrdinal[node]]
}

// rackHeap returns rack r's rack-level heap.
func (j *Job) rackHeap(r int) *blockHeap { return &j.rackShard(r).rack }

// indexMinMaps is the pending-set size below which the inverted locality
// index is not worth its allocations: a linear scan over that few
// pendingRefs is at most a couple of cache lines per offer, while the
// index costs one heap entry per replica. Small jobs dominate the paper's
// workloads (wl1 tops out at single-digit maps), so the hybrid keeps them
// allocation-free and reserves the index for the large jobs whose
// O(pending) scans actually hurt.
const indexMinMaps = 16

// NewJob binds a trace job to its DFS file in cluster c. The tracker
// creates jobs at their arrival times; tests and library users may create
// them directly.
func NewJob(spec workload.Job, file *dfs.File, c *Cluster) *Job {
	j := &Job{
		Spec:           spec,
		File:           file,
		cluster:        c,
		pendingSeq:     make(map[dfs.BlockID]uint64, spec.NumMaps),
		nextSeq:        1,
		linearScan:     spec.NumMaps < indexMinMaps,
		pendingReduces: spec.NumReduces,
		firstTaskTime:  -1,
	}
	if !j.linearScan {
		j.shards = make([]*jobRackShard, c.racks)
	}
	for i := spec.FirstBlock; i < spec.FirstBlock+spec.NumMaps; i++ {
		j.addPending(file.Blocks[i])
	}
	return j
}

// addPending enqueues b with a fresh seq and indexes it under every node
// (and rack) currently holding a replica.
func (j *Job) addPending(b dfs.BlockID) {
	seq := j.nextSeq
	j.nextSeq++
	j.pendingSeq[b] = seq
	j.pending = append(j.pending, pendingRef{seq: seq, b: b})
	if j.linearScan {
		return
	}
	j.indexBlock(b, seq)
}

// indexBlock pushes b under every node (and rack) currently holding a
// replica. Split from addPending so a state-image restore can rebuild the
// inverted index from the live pending set (state.go).
func (j *Job) indexBlock(b dfs.BlockID, seq uint64) {
	topo := j.cluster.Topo
	// Replicas of one block rarely span more than a few racks; dedup with
	// a small fixed buffer and tolerate duplicate heap entries past it
	// (duplicates are merely lazily-discarded stale refs).
	var racks [8]int
	nr := 0
	j.cluster.NN.ForEachLocation(b, func(node topology.NodeID, _ dfs.ReplicaKind) bool {
		j.nodeHeap(node).push(pendingRef{seq: seq, b: b})
		r := topo.Rack(node)
		for i := 0; i < nr; i++ {
			if racks[i] == r {
				return true
			}
		}
		if nr < len(racks) {
			racks[nr] = r
			nr++
		}
		j.rackHeap(r).push(pendingRef{seq: seq, b: b})
		return true
	})
}

// onReplicaAdded indexes a newly announced replica of a still-pending
// block.
func (j *Job) onReplicaAdded(b dfs.BlockID, node topology.NodeID) {
	if j.linearScan {
		return
	}
	seq, ok := j.pendingSeq[b]
	if !ok {
		return
	}
	j.nodeHeap(node).push(pendingRef{seq: seq, b: b})
	j.rackHeap(j.cluster.Topo.Rack(node)).push(pendingRef{seq: seq, b: b})
}

// onReplicaRemoved eagerly drops index entries for a removed replica of a
// still-pending block: the byNode entry always goes (that exact copy is
// gone), the byRack entry only when no surviving replica of the block
// remains in that rack (a rack entry stands for "some replica in this
// rack"). The Take/Has paths still verify liveness against the name node,
// so correctness never depended on this — but eager removal keeps heaps
// from accumulating dead entries under heavy eviction and churn, and a
// removed replica can never again be offered as local.
func (j *Job) onReplicaRemoved(b dfs.BlockID, node topology.NodeID) {
	if j.linearScan {
		return
	}
	seq, ok := j.pendingSeq[b]
	if !ok {
		return
	}
	j.nodeHeap(node).remove(b, seq)
	topo := j.cluster.Topo
	rack := topo.Rack(node)
	// The name node publishes after the mutation, so the remaining
	// locations are the post-removal truth.
	stillInRack := false
	j.cluster.NN.ForEachLocation(b, func(n topology.NodeID, _ dfs.ReplicaKind) bool {
		if topo.Rack(n) == rack {
			stillInRack = true
			return false
		}
		return true
	})
	if !stillInRack {
		j.rackHeap(rack).remove(b, seq)
	}
}

// ID reports the trace job ID.
func (j *Job) ID() int { return j.Spec.ID }

// Arrival reports the submission time.
func (j *Job) Arrival() float64 { return j.Spec.Arrival }

// PendingMaps reports map tasks not yet launched.
func (j *Job) PendingMaps() int { return len(j.pendingSeq) }

// RunningMaps reports in-flight map tasks.
func (j *Job) RunningMaps() int { return j.runningMaps }

// CompletedMaps reports finished map tasks.
func (j *Job) CompletedMaps() int { return j.completedMaps }

// MapsDone reports whether the entire map phase has completed.
func (j *Job) MapsDone() bool { return j.completedMaps == j.Spec.NumMaps }

// PendingReduces reports reduce tasks not yet launched. Reduces only
// become runnable once the map phase completes.
func (j *Job) PendingReduces() int {
	if !j.MapsDone() {
		return 0
	}
	return j.pendingReduces
}

// RunningReduces reports in-flight reduce tasks.
func (j *Job) RunningReduces() int { return j.runningReduces }

// Finished reports whether the job has fully completed.
func (j *Job) Finished() bool { return j.finished }

// Failed reports whether the job ended in failure (a task exhausted its
// attempt limit).
func (j *Job) Failed() bool { return j.failed }

// live reports whether a heap/pending entry still refers to the current
// enqueue of its block.
func (j *Job) live(e pendingRef) bool { return j.pendingSeq[e.b] == e.seq }

// TakeLocalBlock removes and returns a pending block with a replica on
// node, preferring the lowest enqueue order (file offset, then requeue
// order) for determinism.
func (j *Job) TakeLocalBlock(node topology.NodeID) (dfs.BlockID, bool) {
	if j.linearScan {
		for _, e := range j.pending {
			if j.live(e) && j.cluster.NN.HasReplica(e.b, node) {
				delete(j.pendingSeq, e.b)
				return e.b, true
			}
		}
		return 0, false
	}
	h := j.nodeHeap(node)
	for len(*h) > 0 {
		e := h.peek()
		if !j.live(e) || !j.cluster.NN.HasReplica(e.b, node) {
			h.pop()
			continue
		}
		h.pop()
		delete(j.pendingSeq, e.b)
		return e.b, true
	}
	return 0, false
}

// rackReplica reports whether b has a replica in rack at all, and whether
// one of those replicas sits on a node other than skip.
func (j *Job) rackReplica(b dfs.BlockID, rack int, skip topology.NodeID) (inRack, eligible bool) {
	topo := j.cluster.Topo
	j.cluster.NN.ForEachLocation(b, func(n topology.NodeID, _ dfs.ReplicaKind) bool {
		if topo.Rack(n) != rack {
			return true
		}
		inRack = true
		if n != skip {
			eligible = true
			return false
		}
		return true
	})
	return inRack, eligible
}

// TakeRackLocalBlock removes and returns a pending block with a replica in
// node's rack (but not on node itself).
func (j *Job) TakeRackLocalBlock(node topology.NodeID) (dfs.BlockID, bool) {
	rack := j.cluster.Topo.Rack(node)
	if j.linearScan {
		for _, e := range j.pending {
			if !j.live(e) {
				continue
			}
			if _, ok := j.rackReplica(e.b, rack, node); ok {
				delete(j.pendingSeq, e.b)
				return e.b, true
			}
		}
		return 0, false
	}
	h := j.rackHeap(rack)
	j.rackKeep = j.rackKeep[:0]
	var taken dfs.BlockID
	found := false
	for len(*h) > 0 {
		e := h.peek()
		if !j.live(e) {
			h.pop()
			continue
		}
		inRack, eligible := j.rackReplica(e.b, rack, node)
		if !inRack {
			h.pop() // the rack lost its replica; the entry is stale
			continue
		}
		if !eligible {
			// Live but unusable for this node; park it and keep looking.
			j.rackKeep = append(j.rackKeep, h.pop())
			continue
		}
		h.pop()
		delete(j.pendingSeq, e.b)
		taken, found = e.b, true
		break
	}
	for _, e := range j.rackKeep {
		h.push(e)
	}
	return taken, found
}

// TakeAnyBlock removes and returns the oldest pending block.
func (j *Job) TakeAnyBlock() (dfs.BlockID, bool) {
	for len(j.pending) > 0 {
		e := j.pending[0]
		j.pending = j.pending[1:]
		if !j.live(e) {
			continue
		}
		delete(j.pendingSeq, e.b)
		return e.b, true
	}
	return 0, false
}

// HasLocalBlock reports whether any pending block is node-local without
// removing it (used by delay scheduling to decide whether to wait). On the
// indexed path it compacts stale heap entries as a side effect.
func (j *Job) HasLocalBlock(node topology.NodeID) bool {
	if j.linearScan {
		for _, e := range j.pending {
			if j.live(e) && j.cluster.NN.HasReplica(e.b, node) {
				return true
			}
		}
		return false
	}
	h := j.nodeHeap(node)
	for len(*h) > 0 {
		e := h.peek()
		if !j.live(e) || !j.cluster.NN.HasReplica(e.b, node) {
			h.pop()
			continue
		}
		return true
	}
	return false
}

// outputBlocksPerReduce splits the job's output volume evenly across its
// reduce tasks.
func (j *Job) outputBlocksPerReduce() float64 {
	if j.Spec.NumReduces == 0 {
		return 0
	}
	return float64(j.Spec.OutputBlocks) / float64(j.Spec.NumReduces)
}

// outputNetworkBytesPerReduce is the fabric traffic one reduce task's
// output pipeline generates: (replication-1) downstream copies.
func (j *Job) outputNetworkBytesPerReduce(p *config.Profile) int64 {
	if j.Spec.NumReduces == 0 || p.ReplicationFactor <= 1 {
		return 0
	}
	perReduce := j.outputBlocksPerReduce() * float64(p.BlockSizeBytes())
	return int64(perReduce * float64(p.ReplicationFactor-1))
}

// Requeue returns a block to the pending set after its task was killed by
// a node failure; the scheduler will relaunch it elsewhere. The block gets
// a fresh seq, placing it behind every currently pending block.
func (j *Job) Requeue(b dfs.BlockID) {
	if _, ok := j.pendingSeq[b]; ok {
		return
	}
	j.addPending(b)
}

// Locality reports the fraction of completed map tasks that ran
// node-local — the paper's headline system metric.
func (j *Job) Locality() float64 {
	total := j.localMaps + j.rackMaps + j.remoteMaps
	if total == 0 {
		return 0
	}
	return float64(j.localMaps) / float64(total)
}

// Result summarizes a finished job for the metrics layer.
type Result struct {
	ID       int
	Arrival  float64
	Finish   float64
	NumMaps  int
	NumRed   int
	Local    int
	Rack     int
	Remote   int
	FileRank int // workload file index (popularity rank - 1)
	// MapTimeSum is the summed wall-clock duration of all map tasks,
	// backing the map-completion-time reduction claim (§V-C).
	MapTimeSum float64
	// RemoteBytes is the input bytes this job moved across the network
	// (non-node-local reads). Locality gains show up directly here: the
	// paper's §V-B argues reduced fabric traffic is DARE's key system-level
	// benefit.
	RemoteBytes int64
	// OutputBytes is the network traffic of the output replication
	// pipeline — identical with and without DARE, which is why
	// output-bound jobs see no benefit (§V-C).
	OutputBytes int64
	// OutputBlocks echoes the job's output volume for input/output-bound
	// classification.
	OutputBlocks int
	// Turnaround is Finish - Arrival (the paper's TT_k in eq. 1).
	Turnaround float64
	// FirstLaunch is when the job's first task started; Finish -
	// FirstLaunch is the service time, free of queueing delay.
	FirstLaunch float64
	// Dedicated is the analytic 100%-local empty-cluster running time —
	// the slowdown denominator (§V-A).
	Dedicated float64
	// Failed marks a job that ended in failure after a task exhausted its
	// attempt limit; Finish then records the failure time.
	Failed bool
}

// Slowdown reports Turnaround / Dedicated.
func (r Result) Slowdown() float64 {
	if r.Dedicated <= 0 {
		return 0
	}
	return r.Turnaround / r.Dedicated
}

// ServiceTime reports the job's running time once scheduled (Finish -
// FirstLaunch), the §V-A "running time" used in the slowdown definition.
func (r Result) ServiceTime() float64 {
	if r.FirstLaunch < 0 {
		return r.Turnaround
	}
	return r.Finish - r.FirstLaunch
}

// Locality reports the node-local fraction of the job's map tasks.
func (r Result) Locality() float64 {
	total := r.Local + r.Rack + r.Remote
	if total == 0 {
		return 0
	}
	return float64(r.Local) / float64(total)
}

// result builds the Result snapshot for a finished job.
func (j *Job) result() Result {
	return Result{
		ID:           j.Spec.ID,
		Arrival:      j.Spec.Arrival,
		Finish:       j.finishTime,
		NumMaps:      j.Spec.NumMaps,
		NumRed:       j.Spec.NumReduces,
		Local:        j.localMaps,
		Rack:         j.rackMaps,
		Remote:       j.remoteMaps,
		FileRank:     j.Spec.File,
		MapTimeSum:   j.mapTimeSum,
		RemoteBytes:  j.remoteBytes,
		OutputBytes:  j.outputBytes,
		OutputBlocks: j.Spec.OutputBlocks,
		FirstLaunch:  j.firstTaskTime,
		Failed:       j.failed,
		Turnaround:   j.finishTime - j.Spec.Arrival,
		Dedicated: j.cluster.DedicatedRunTime(
			j.Spec.NumMaps, j.Spec.CPUPerTask, j.Spec.NumReduces, j.Spec.ReduceTime, j.Spec.OutputBlocks),
	}
}
