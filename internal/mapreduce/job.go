package mapreduce

import (
	"dare/internal/config"
	"dare/internal/dfs"
	"dare/internal/topology"
	"dare/internal/workload"
)

// Locality classifies where a map task ran relative to its input block.
type Locality int

const (
	// NodeLocal: the input block has a replica on the executing node.
	NodeLocal Locality = iota
	// RackLocal: a replica exists in the executing node's rack.
	RackLocal
	// Remote: the nearest replica is off-rack.
	Remote
)

// String implements fmt.Stringer.
func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "node-local"
	case RackLocal:
		return "rack-local"
	default:
		return "remote"
	}
}

// Job is the runtime state of one trace job inside the cluster.
type Job struct {
	Spec workload.Job
	// File is the DFS file backing the job's input window.
	File *dfs.File

	cluster *Cluster

	// pending holds not-yet-started map input blocks in file order.
	pending []dfs.BlockID
	// pendingSet mirrors pending for O(1) membership.
	pendingSet map[dfs.BlockID]bool

	runningMaps   int
	completedMaps int

	localMaps     int
	rackMaps      int
	remoteMaps    int
	mapTimeSum    float64
	remoteBytes   int64
	outputBytes   int64
	firstTaskTime float64

	pendingReduces  int
	runningReduces  int
	finishedReduces int

	finished   bool
	finishTime float64
}

// NewJob binds a trace job to its DFS file in cluster c. The tracker
// creates jobs at their arrival times; tests and library users may create
// them directly.
func NewJob(spec workload.Job, file *dfs.File, c *Cluster) *Job {
	j := &Job{
		Spec:           spec,
		File:           file,
		cluster:        c,
		pendingSet:     make(map[dfs.BlockID]bool, spec.NumMaps),
		pendingReduces: spec.NumReduces,
		firstTaskTime:  -1,
	}
	for i := spec.FirstBlock; i < spec.FirstBlock+spec.NumMaps; i++ {
		b := file.Blocks[i]
		j.pending = append(j.pending, b)
		j.pendingSet[b] = true
	}
	return j
}

// ID reports the trace job ID.
func (j *Job) ID() int { return j.Spec.ID }

// Arrival reports the submission time.
func (j *Job) Arrival() float64 { return j.Spec.Arrival }

// PendingMaps reports map tasks not yet launched.
func (j *Job) PendingMaps() int { return len(j.pending) }

// RunningMaps reports in-flight map tasks.
func (j *Job) RunningMaps() int { return j.runningMaps }

// CompletedMaps reports finished map tasks.
func (j *Job) CompletedMaps() int { return j.completedMaps }

// MapsDone reports whether the entire map phase has completed.
func (j *Job) MapsDone() bool { return j.completedMaps == j.Spec.NumMaps }

// PendingReduces reports reduce tasks not yet launched. Reduces only
// become runnable once the map phase completes.
func (j *Job) PendingReduces() int {
	if !j.MapsDone() {
		return 0
	}
	return j.pendingReduces
}

// RunningReduces reports in-flight reduce tasks.
func (j *Job) RunningReduces() int { return j.runningReduces }

// Finished reports whether the job has fully completed.
func (j *Job) Finished() bool { return j.finished }

// TakeLocalBlock removes and returns a pending block with a replica on
// node, preferring the lowest file offset for determinism.
func (j *Job) TakeLocalBlock(node topology.NodeID) (dfs.BlockID, bool) {
	for i, b := range j.pending {
		if j.cluster.NN.HasReplica(b, node) {
			j.removePendingAt(i)
			return b, true
		}
	}
	return 0, false
}

// TakeRackLocalBlock removes and returns a pending block with a replica in
// node's rack (but not on node itself).
func (j *Job) TakeRackLocalBlock(node topology.NodeID) (dfs.BlockID, bool) {
	rack := j.cluster.Topo.Rack(node)
	for i, b := range j.pending {
		for _, loc := range j.cluster.NN.Locations(b) {
			if loc != node && j.cluster.Topo.Rack(loc) == rack {
				j.removePendingAt(i)
				return b, true
			}
		}
	}
	return 0, false
}

// TakeAnyBlock removes and returns the first pending block.
func (j *Job) TakeAnyBlock() (dfs.BlockID, bool) {
	if len(j.pending) == 0 {
		return 0, false
	}
	b := j.pending[0]
	j.removePendingAt(0)
	return b, true
}

// HasLocalBlock reports whether any pending block is node-local without
// removing it (used by delay scheduling to decide whether to wait).
func (j *Job) HasLocalBlock(node topology.NodeID) bool {
	for _, b := range j.pending {
		if j.cluster.NN.HasReplica(b, node) {
			return true
		}
	}
	return false
}

// outputBlocksPerReduce splits the job's output volume evenly across its
// reduce tasks.
func (j *Job) outputBlocksPerReduce() float64 {
	if j.Spec.NumReduces == 0 {
		return 0
	}
	return float64(j.Spec.OutputBlocks) / float64(j.Spec.NumReduces)
}

// outputNetworkBytesPerReduce is the fabric traffic one reduce task's
// output pipeline generates: (replication-1) downstream copies.
func (j *Job) outputNetworkBytesPerReduce(p *config.Profile) int64 {
	if j.Spec.NumReduces == 0 || p.ReplicationFactor <= 1 {
		return 0
	}
	perReduce := j.outputBlocksPerReduce() * float64(p.BlockSizeBytes())
	return int64(perReduce * float64(p.ReplicationFactor-1))
}

// Requeue returns a block to the pending set after its task was killed by
// a node failure; the scheduler will relaunch it elsewhere.
func (j *Job) Requeue(b dfs.BlockID) {
	if j.pendingSet[b] {
		return
	}
	j.pending = append(j.pending, b)
	j.pendingSet[b] = true
}

func (j *Job) removePendingAt(i int) {
	delete(j.pendingSet, j.pending[i])
	j.pending = append(j.pending[:i], j.pending[i+1:]...)
}

// Locality reports the fraction of completed map tasks that ran
// node-local — the paper's headline system metric.
func (j *Job) Locality() float64 {
	total := j.localMaps + j.rackMaps + j.remoteMaps
	if total == 0 {
		return 0
	}
	return float64(j.localMaps) / float64(total)
}

// Result summarizes a finished job for the metrics layer.
type Result struct {
	ID       int
	Arrival  float64
	Finish   float64
	NumMaps  int
	NumRed   int
	Local    int
	Rack     int
	Remote   int
	FileRank int // workload file index (popularity rank - 1)
	// MapTimeSum is the summed wall-clock duration of all map tasks,
	// backing the map-completion-time reduction claim (§V-C).
	MapTimeSum float64
	// RemoteBytes is the input bytes this job moved across the network
	// (non-node-local reads). Locality gains show up directly here: the
	// paper's §V-B argues reduced fabric traffic is DARE's key system-level
	// benefit.
	RemoteBytes int64
	// OutputBytes is the network traffic of the output replication
	// pipeline — identical with and without DARE, which is why
	// output-bound jobs see no benefit (§V-C).
	OutputBytes int64
	// OutputBlocks echoes the job's output volume for input/output-bound
	// classification.
	OutputBlocks int
	// Turnaround is Finish - Arrival (the paper's TT_k in eq. 1).
	Turnaround float64
	// FirstLaunch is when the job's first task started; Finish -
	// FirstLaunch is the service time, free of queueing delay.
	FirstLaunch float64
	// Dedicated is the analytic 100%-local empty-cluster running time —
	// the slowdown denominator (§V-A).
	Dedicated float64
}

// Slowdown reports Turnaround / Dedicated.
func (r Result) Slowdown() float64 {
	if r.Dedicated <= 0 {
		return 0
	}
	return r.Turnaround / r.Dedicated
}

// ServiceTime reports the job's running time once scheduled (Finish -
// FirstLaunch), the §V-A "running time" used in the slowdown definition.
func (r Result) ServiceTime() float64 {
	if r.FirstLaunch < 0 {
		return r.Turnaround
	}
	return r.Finish - r.FirstLaunch
}

// Locality reports the node-local fraction of the job's map tasks.
func (r Result) Locality() float64 {
	total := r.Local + r.Rack + r.Remote
	if total == 0 {
		return 0
	}
	return float64(r.Local) / float64(total)
}

// result builds the Result snapshot for a finished job.
func (j *Job) result() Result {
	return Result{
		ID:           j.Spec.ID,
		Arrival:      j.Spec.Arrival,
		Finish:       j.finishTime,
		NumMaps:      j.Spec.NumMaps,
		NumRed:       j.Spec.NumReduces,
		Local:        j.localMaps,
		Rack:         j.rackMaps,
		Remote:       j.remoteMaps,
		FileRank:     j.Spec.File,
		MapTimeSum:   j.mapTimeSum,
		RemoteBytes:  j.remoteBytes,
		OutputBytes:  j.outputBytes,
		OutputBlocks: j.Spec.OutputBlocks,
		FirstLaunch:  j.firstTaskTime,
		Turnaround:   j.finishTime - j.Spec.Arrival,
		Dedicated: j.cluster.DedicatedRunTime(
			j.Spec.NumMaps, j.Spec.CPUPerTask, j.Spec.NumReduces, j.Spec.ReduceTime, j.Spec.OutputBlocks),
	}
}
