package mapreduce

import (
	"fmt"
	"sort"

	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/policy"
	"dare/internal/sim"
	"dare/internal/snapshot"
	"dare/internal/stats"
	"dare/internal/topology"
	"dare/internal/workload"
)

// State-mode serialization of the compute layer. EncodeState captures the
// tracker's complete mutable state — nodes, jobs, results, scheduler
// queues, in-flight attempts, fault/gray/master machinery, and RNG stream
// positions — so a resume can restore it in O(state) instead of replaying
// the run's whole event history. The fingerprint table (snapshot.go)
// stays the correctness oracle: a decoded tracker must reproduce the
// fingerprint captured at checkpoint time before the engine goes live.
//
// Runtime-deferred closures cannot ride the image directly; each deferral
// site tags its pooled event (sim.EventTag) with just enough context for
// DecodeEvent to rebuild the identical closure. In-flight task attempts
// keep their *sim.Event handles and are marked sim.Owned: the tracker
// serializes their (when, seq) coordinates itself.

// Tag kinds 1..63 are reserved for the mapreduce layer (the runner's
// decode dispatch routes them to Tracker.DecodeEvent).
const (
	// TagArrive is a stream-appended job arrival (AppendJobs).
	TagArrive uint16 = 1
	// TagRequeue is a killed map input's backoff requeue.
	TagRequeue uint16 = 2
	// TagRepairScan is a pending under-replication detection round.
	TagRepairScan uint16 = 3
	// TagRepairBlock is one staggered block re-replication copy.
	TagRepairBlock uint16 = 4
	// TagQuarantine is a deferred checksum-failure report.
	TagQuarantine uint16 = 5
	// TagGrayPublish is a gray-read event published at an offset.
	TagGrayPublish uint16 = 6
	// TagReadBegin is a deferred remote-fetch NIC accounting start.
	TagReadBegin uint16 = 7
	// TagReadRelease is a remote-fetch NIC accounting end.
	TagReadRelease uint16 = 8
	// TagRejoin is a flapping node's deferred re-registration.
	TagRejoin uint16 = 9
)

type arriveTag struct{ spec workload.Job }

func (t arriveTag) TagKind() uint16 { return TagArrive }
func (t arriveTag) EncodeTag(e *snapshot.Enc) {
	spec := t.spec
	workload.EncodeJob(e, &spec)
}

type requeueTag struct {
	job int
	b   dfs.BlockID
}

func (t requeueTag) TagKind() uint16 { return TagRequeue }
func (t requeueTag) EncodeTag(e *snapshot.Enc) {
	e.Int(t.job)
	e.I64(int64(t.b))
}

type repairScanTag struct{}

func (repairScanTag) TagKind() uint16           { return TagRepairScan }
func (repairScanTag) EncodeTag(e *snapshot.Enc) {}

type repairBlockTag struct {
	b     dfs.BlockID
	retry int
}

func (t repairBlockTag) TagKind() uint16 { return TagRepairBlock }
func (t repairBlockTag) EncodeTag(e *snapshot.Enc) {
	e.I64(int64(t.b))
	e.Int(t.retry)
}

type quarantineTag struct {
	b     dfs.BlockID
	src   topology.NodeID
	retry int
}

func (t quarantineTag) TagKind() uint16 { return TagQuarantine }
func (t quarantineTag) EncodeTag(e *snapshot.Enc) {
	e.I64(int64(t.b))
	e.Int(int(t.src))
	e.Int(t.retry)
}

type grayPublishTag struct{ ev event.Event }

func (t grayPublishTag) TagKind() uint16 { return TagGrayPublish }
func (t grayPublishTag) EncodeTag(e *snapshot.Enc) {
	// Time is omitted: the bus stamps it at Publish.
	e.U8(uint8(t.ev.Kind))
	e.I64(int64(t.ev.Node))
	e.I64(int64(t.ev.Rack))
	e.I64(int64(t.ev.Job))
	e.I64(int64(t.ev.File))
	e.I64(t.ev.Block)
	e.I64(t.ev.Aux)
	e.Bool(t.ev.Flag)
}

type readBeginTag struct {
	node topology.NodeID
	dur  float64
}

func (t readBeginTag) TagKind() uint16 { return TagReadBegin }
func (t readBeginTag) EncodeTag(e *snapshot.Enc) {
	e.Int(int(t.node))
	e.F64(t.dur)
}

type readReleaseTag struct{ node topology.NodeID }

func (t readReleaseTag) TagKind() uint16 { return TagReadRelease }
func (t readReleaseTag) EncodeTag(e *snapshot.Enc) {
	e.Int(int(t.node))
}

type rejoinTag struct {
	node  topology.NodeID
	stale []dfs.StaleReplica
}

func (t rejoinTag) TagKind() uint16 { return TagRejoin }
func (t rejoinTag) EncodeTag(e *snapshot.Enc) {
	e.Int(int(t.node))
	e.U32(uint32(len(t.stale)))
	for _, s := range t.stale {
		e.I64(int64(s.Block))
		e.U8(uint8(s.Kind))
	}
}

// DecodeEvent rebuilds the closure for one tagged pending event from its
// payload, returning the tag to re-attach (so the next checkpoint can
// encode the event again) and the closure to fire.
func (t *Tracker) DecodeEvent(kind uint16, d *snapshot.Dec) (sim.EventTag, func(), error) {
	switch kind {
	case TagArrive:
		spec := workload.DecodeJob(d)
		return arriveTag{spec: spec}, func() { t.arrive(spec) }, d.Err()
	case TagRequeue:
		id := d.Int()
		b := dfs.BlockID(d.I64())
		j := t.jobByID[int32(id)]
		fn := func() {}
		if j != nil {
			// The original closure guards on j.finished; a job already
			// finished at checkpoint time resolves to the same no-op.
			fn = func() {
				if !j.finished {
					j.Requeue(b)
				}
			}
		}
		return requeueTag{job: id, b: b}, fn, d.Err()
	case TagRepairScan:
		return repairScanTag{}, t.repairScan, d.Err()
	case TagRepairBlock:
		b := dfs.BlockID(d.I64())
		retry := d.Int()
		return repairBlockTag{b: b, retry: retry}, func() { t.repairBlock(b, retry) }, d.Err()
	case TagQuarantine:
		b := dfs.BlockID(d.I64())
		src := topology.NodeID(d.Int())
		retry := d.Int()
		return quarantineTag{b: b, src: src, retry: retry},
			func() { t.quarantineNow(b, src, retry) }, d.Err()
	case TagGrayPublish:
		var ev event.Event
		ev.Kind = event.Kind(d.U8())
		ev.Node = int32(d.I64())
		ev.Rack = int32(d.I64())
		ev.Job = int32(d.I64())
		ev.File = int32(d.I64())
		ev.Block = d.I64()
		ev.Aux = d.I64()
		ev.Flag = d.Bool()
		return grayPublishTag{ev: ev}, func() { t.bus.Publish(ev) }, d.Err()
	case TagReadBegin:
		id := d.Int()
		dur := d.F64()
		if err := d.Err(); err != nil {
			return nil, nil, err
		}
		if id < 0 || id >= len(t.c.Nodes) {
			return nil, nil, fmt.Errorf("mapreduce: read-begin tag names invalid node %d", id)
		}
		node := t.c.Nodes[id]
		return readBeginTag{node: node.ID, dur: dur}, t.beginRemoteRead(node, dur), nil
	case TagReadRelease:
		id := d.Int()
		if err := d.Err(); err != nil {
			return nil, nil, err
		}
		if id < 0 || id >= len(t.c.Nodes) {
			return nil, nil, fmt.Errorf("mapreduce: read-release tag names invalid node %d", id)
		}
		node := t.c.Nodes[id]
		return readReleaseTag{node: node.ID}, func() { node.ActiveRemoteReads-- }, nil
	case TagRejoin:
		id := d.Int()
		n := d.Count(8)
		if err := d.Err(); err != nil {
			return nil, nil, err
		}
		if id < 0 || id >= len(t.c.Nodes) {
			return nil, nil, fmt.Errorf("mapreduce: rejoin tag names invalid node %d", id)
		}
		var stale []dfs.StaleReplica
		for i := 0; i < n; i++ {
			b := dfs.BlockID(d.I64())
			kind := dfs.ReplicaKind(d.U8())
			stale = append(stale, dfs.StaleReplica{Block: b, Kind: kind})
		}
		node := t.c.Nodes[id]
		return rejoinTag{node: node.ID, stale: stale},
			func() { t.rejoinWithReport(node, stale) }, d.Err()
	}
	return nil, nil, fmt.Errorf("mapreduce: unknown event tag kind %d", kind)
}

// SelectorState is implemented by task selectors whose mutable state can
// ride a state image (internal/scheduler's FIFO and Fair both do). A
// selector without it forces the checkpoint back to replay-only resume.
type SelectorState interface {
	EncodeState(e *snapshot.Enc)
	DecodeState(d *snapshot.Dec, job func(id int) *Job) error
}

// encodeJobState serializes one job's complete scheduling state. The
// inverted locality index (shards/heaps) is derived from pendingSeq plus
// the replica registry; decodeJobState rebuilds it.
func encodeJobState(enc *snapshot.Enc, j *Job) {
	spec := j.Spec
	workload.EncodeJob(enc, &spec)
	enc.U32(uint32(len(j.pending)))
	for _, e := range j.pending {
		enc.U64(e.seq)
		enc.I64(int64(e.b))
	}
	blocks := make([]dfs.BlockID, 0, len(j.pendingSeq))
	for b := range j.pendingSeq {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, k int) bool { return blocks[i] < blocks[k] })
	enc.U32(uint32(len(blocks)))
	for _, b := range blocks {
		enc.I64(int64(b))
		enc.U64(j.pendingSeq[b])
	}
	enc.U64(j.nextSeq)
	enc.Int(j.runningMaps)
	enc.Int(j.completedMaps)
	enc.Int(j.localMaps)
	enc.Int(j.rackMaps)
	enc.Int(j.remoteMaps)
	enc.F64(j.mapTimeSum)
	enc.I64(j.remoteBytes)
	enc.I64(j.outputBytes)
	enc.F64(j.firstTaskTime)
	enc.Int(j.pendingReduces)
	enc.Int(j.runningReduces)
	enc.Int(j.finishedReduces)
	blocks = blocks[:0]
	for b := range j.attempts {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, k int) bool { return blocks[i] < blocks[k] })
	enc.U32(uint32(len(blocks)))
	for _, b := range blocks {
		enc.I64(int64(b))
		enc.Int(j.attempts[b])
	}
	enc.Bool(j.finished)
	enc.Bool(j.failed)
	enc.F64(j.finishTime)
}

// decodeJobState rebuilds one job from an encodeJobState image, including
// its inverted locality index (heaps are re-pushed from the live pending
// set against the already-restored replica registry — stale entries the
// original heaps carried are unobservable, since lazy discard neither
// publishes events nor draws randomness).
func (t *Tracker) decodeJobState(d *snapshot.Dec) (*Job, error) {
	spec := workload.DecodeJob(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if spec.File < 0 || spec.File >= len(t.files) {
		return nil, fmt.Errorf("mapreduce: job %d state names invalid file %d", spec.ID, spec.File)
	}
	j := &Job{
		Spec:       spec,
		File:       t.files[spec.File],
		cluster:    t.c,
		pendingSeq: make(map[dfs.BlockID]uint64, spec.NumMaps),
		linearScan: t.linearScan || spec.NumMaps < indexMinMaps,
	}
	np := d.Count(16)
	for i := 0; i < np; i++ {
		seq := d.U64()
		b := dfs.BlockID(d.I64())
		j.pending = append(j.pending, pendingRef{seq: seq, b: b})
	}
	ns := d.Count(16)
	live := make([]pendingRef, 0, ns)
	for i := 0; i < ns; i++ {
		b := dfs.BlockID(d.I64())
		seq := d.U64()
		j.pendingSeq[b] = seq
		live = append(live, pendingRef{seq: seq, b: b})
	}
	j.nextSeq = d.U64()
	j.runningMaps = d.Int()
	j.completedMaps = d.Int()
	j.localMaps = d.Int()
	j.rackMaps = d.Int()
	j.remoteMaps = d.Int()
	j.mapTimeSum = d.F64()
	j.remoteBytes = d.I64()
	j.outputBytes = d.I64()
	j.firstTaskTime = d.F64()
	j.pendingReduces = d.Int()
	j.runningReduces = d.Int()
	j.finishedReduces = d.Int()
	na := d.Count(16)
	if na > 0 {
		j.attempts = make(map[dfs.BlockID]int, na)
	}
	for i := 0; i < na; i++ {
		b := dfs.BlockID(d.I64())
		j.attempts[b] = d.Int()
	}
	j.finished = d.Bool()
	j.failed = d.Bool()
	j.finishTime = d.F64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if !j.linearScan {
		j.shards = make([]*jobRackShard, t.c.racks)
		sort.Slice(live, func(i, k int) bool { return live[i].seq < live[k].seq })
		for _, e := range live {
			j.indexBlock(e.b, e.seq)
		}
	}
	return j, nil
}

// zombieJobs returns jobs no longer registered (finished, typically
// failed with attempts still in flight) but still referenced by in-flight
// task records or attempt groups, sorted by ID. Their counters keep
// mutating when those attempts complete, so they must ride the image.
func (t *Tracker) zombieJobs() []*Job {
	seen := make(map[*Job]bool)
	var out []*Job
	add := func(j *Job) {
		if j == nil || seen[j] || t.jobByID[int32(j.Spec.ID)] == j {
			return
		}
		seen[j] = true
		out = append(out, j)
	}
	for _, g := range t.spec.groups {
		add(g.job)
	}
	for _, recs := range t.inflight {
		for rec := range recs {
			add(rec.job)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Spec.ID < out[k].Spec.ID })
	return out
}

func encodeResult(enc *snapshot.Enc, r Result) {
	enc.Int(r.ID)
	enc.F64(r.Arrival)
	enc.F64(r.Finish)
	enc.Int(r.NumMaps)
	enc.Int(r.NumRed)
	enc.Int(r.Local)
	enc.Int(r.Rack)
	enc.Int(r.Remote)
	enc.Int(r.FileRank)
	enc.F64(r.MapTimeSum)
	enc.I64(r.RemoteBytes)
	enc.I64(r.OutputBytes)
	enc.Int(r.OutputBlocks)
	enc.F64(r.Turnaround)
	enc.F64(r.FirstLaunch)
	enc.F64(r.Dedicated)
	enc.Bool(r.Failed)
}

func decodeResult(d *snapshot.Dec) Result {
	var r Result
	r.ID = d.Int()
	r.Arrival = d.F64()
	r.Finish = d.F64()
	r.NumMaps = d.Int()
	r.NumRed = d.Int()
	r.Local = d.Int()
	r.Rack = d.Int()
	r.Remote = d.Int()
	r.FileRank = d.Int()
	r.MapTimeSum = d.F64()
	r.RemoteBytes = d.I64()
	r.OutputBytes = d.I64()
	r.OutputBlocks = d.Int()
	r.Turnaround = d.F64()
	r.FirstLaunch = d.F64()
	r.Dedicated = d.F64()
	r.Failed = d.Bool()
	return r
}

func encodeBlockList(enc *snapshot.Enc, blocks []dfs.BlockID) {
	enc.U32(uint32(len(blocks)))
	for _, b := range blocks {
		enc.I64(int64(b))
	}
}

func decodeBlockList(d *snapshot.Dec) []dfs.BlockID {
	n := d.Count(8)
	if n == 0 {
		return nil
	}
	out := make([]dfs.BlockID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, dfs.BlockID(d.I64()))
	}
	return out
}

func encodeFailureEvent(enc *snapshot.Enc, fe *FailureEvent) {
	enc.F64(fe.Time)
	enc.Int(int(fe.Node))
	enc.Int(fe.Rack)
	enc.Int(fe.KilledMaps)
	enc.Int(fe.KilledReduces)
	enc.Int(int(fe.Report.Node))
	encodeBlockList(enc, fe.Report.LostPrimaries)
	encodeBlockList(enc, fe.Report.LostDynamic)
	encodeBlockList(enc, fe.Report.UnavailableBlocks)
	enc.Int(fe.AvailableBlocks)
	enc.Int(fe.TotalBlocks)
	enc.F64(fe.WeightedAvailability)
	enc.Int(fe.Backlog)
	enc.Bool(fe.Flap)
}

func decodeFailureEvent(d *snapshot.Dec) FailureEvent {
	var fe FailureEvent
	fe.Time = d.F64()
	fe.Node = topology.NodeID(d.Int())
	fe.Rack = d.Int()
	fe.KilledMaps = d.Int()
	fe.KilledReduces = d.Int()
	fe.Report.Node = topology.NodeID(d.Int())
	fe.Report.LostPrimaries = decodeBlockList(d)
	fe.Report.LostDynamic = decodeBlockList(d)
	fe.Report.UnavailableBlocks = decodeBlockList(d)
	fe.AvailableBlocks = d.Int()
	fe.TotalBlocks = d.Int()
	fe.WeightedAvailability = d.F64()
	fe.Backlog = d.Int()
	fe.Flap = d.Bool()
	return fe
}

// encodeOptRNG writes a presence flag plus the stream state. Presence is
// derived from run configuration, so encode and decode always agree; the
// flag is a cheap cross-check.
func encodeOptRNG(enc *snapshot.Enc, g *stats.RNG) error {
	enc.Bool(g != nil)
	if g == nil {
		return nil
	}
	return g.EncodeState(enc)
}

func decodeOptRNG(d *snapshot.Dec, g *stats.RNG) error {
	has := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if has != (g != nil) {
		return fmt.Errorf("mapreduce: RNG presence mismatch in state image (image %v, run %v)", has, g != nil)
	}
	if g == nil {
		return nil
	}
	return g.DecodeState(d)
}

// EncodeState serializes the tracker's complete mutable state into enc.
// The layout is fixed; DecodeState consumes it field for field. An error
// (unsupported selector, RNG backend without state access) means the
// checkpoint must be written without state sections — resume then falls
// back to the replay path.
func (t *Tracker) EncodeState(enc *snapshot.Enc) error {
	// Per-node slot occupancy and health. Bandwidths are reconstructed
	// from the seed.
	for _, n := range t.c.Nodes {
		enc.Int(n.FreeMapSlots)
		enc.Int(n.FreeReduceSlots)
		enc.Int(n.ActiveRemoteReads)
		enc.F64(n.SlowFactor)
		enc.F64(n.DiskFactor)
		enc.Bool(n.Up)
		enc.Bool(n.Blacklisted)
	}

	enc.Int(t.totalJobs)
	enc.Int(t.completed)
	// streaming flips to false at the stream horizon; it must survive.
	enc.Bool(t.streaming)
	enc.U32(uint32(len(t.results)))
	for _, r := range t.results {
		encodeResult(enc, r)
	}

	enc.U32(uint32(len(t.active)))
	for _, j := range t.active {
		encodeJobState(enc, j)
	}
	zombies := t.zombieJobs()
	enc.U32(uint32(len(zombies)))
	for _, j := range zombies {
		encodeJobState(enc, j)
	}

	ss, ok := t.sel.(SelectorState)
	if !ok {
		return fmt.Errorf("mapreduce: selector %q does not support state serialization", t.sel.Name())
	}
	enc.Str(t.sel.Name())
	ss.EncodeState(enc)

	// Speculator: attempt groups in creation order, then in-flight task
	// records per node. Group membership (recs) is rebuilt from the
	// records; a record whose group is not in the list (speculation off)
	// carries the group inline.
	enc.Int(t.spec.launched)
	enc.U32(uint32(len(t.spec.groups)))
	groupIdx := make(map[*taskGroup]int, len(t.spec.groups))
	for i, g := range t.spec.groups {
		groupIdx[g] = i
		enc.Int(g.job.Spec.ID)
		enc.I64(int64(g.block))
		enc.F64(g.started)
		enc.Bool(g.done)
	}
	enc.Bool(t.spec.qualify != nil)
	if t.spec.qualify != nil {
		if err := policy.EncodeRuleState(enc, t.spec.qualify); err != nil {
			return err
		}
	}

	withRecs := 0
	for _, node := range t.c.Nodes {
		if len(t.inflight[node]) > 0 {
			withRecs++
		}
	}
	enc.U32(uint32(withRecs))
	for _, node := range t.c.Nodes {
		recs := t.inflight[node]
		if len(recs) == 0 {
			continue
		}
		enc.Int(int(node.ID))
		ordered := make([]*taskRec, 0, len(recs))
		for r := range recs {
			ordered = append(ordered, r)
		}
		sort.Slice(ordered, func(i, k int) bool {
			a, b := ordered[i], ordered[k]
			if a.isMap != b.isMap {
				return a.isMap
			}
			if a.block != b.block {
				return a.block < b.block
			}
			if a.job.Spec.ID != b.job.Spec.ID {
				return a.job.Spec.ID < b.job.Spec.ID
			}
			return a.ev.Seq() < b.ev.Seq()
		})
		enc.U32(uint32(len(ordered)))
		for _, r := range ordered {
			enc.Int(r.job.Spec.ID)
			enc.Bool(r.isMap)
			enc.F64(r.ev.When())
			enc.U64(r.ev.Seq())
			if !r.isMap {
				continue
			}
			enc.I64(int64(r.block))
			enc.Int(int(r.loc))
			enc.F64(r.dur)
			if gi, shared := groupIdx[r.group]; shared {
				enc.Int(gi)
			} else {
				enc.Int(-1)
				enc.F64(r.group.started)
				enc.Bool(r.group.done)
			}
		}
	}

	// Failure handler: blame counters and lazily compiled rule state. The
	// image records which rules were compiled; decode force-compiles the
	// same set (rule compilation is draw-free) and restores their state.
	h := t.faults
	for _, c := range h.nodeTaskFailures {
		enc.Int(c)
	}
	enc.U32(uint32(len(h.blacklistRules)))
	for _, r := range h.blacklistRules {
		enc.Bool(r != nil)
		if r != nil {
			if err := policy.EncodeRuleState(enc, r); err != nil {
				return err
			}
		}
	}
	enc.Bool(h.failRule != nil)
	if h.failRule != nil {
		if err := policy.EncodeRuleState(enc, h.failRule); err != nil {
			return err
		}
	}
	if err := encodeOptRNG(enc, h.taskFailG); err != nil {
		return err
	}
	if err := encodeOptRNG(enc, h.blacklistRNG); err != nil {
		return err
	}

	gs := &t.gray.stats
	enc.Int(gs.Degrades)
	enc.Int(gs.Restores)
	enc.Int(gs.Flaps)
	enc.Int(gs.ReplicasRestored)
	enc.Int(gs.CorruptionsInjected)
	enc.Int(gs.CorruptionsDetected)
	enc.Int(gs.ReadRetries)
	enc.Int(gs.HedgedReads)
	enc.Int(gs.HedgeWins)
	if err := encodeOptRNG(enc, t.gray.rng); err != nil {
		return err
	}

	m := &t.master
	enc.Bool(m.down)
	enc.U8(uint8(m.mode))
	enc.F64(m.downSince)
	enc.F64(m.recoverAt)
	enc.I64(m.outageHeartbeats)
	enc.I64(m.outageReads)
	enc.Int(m.stats.Outages)
	enc.F64(m.stats.Downtime)
	enc.I64(m.stats.DeferredHeartbeats)
	enc.I64(m.stats.DeferredReads)
	enc.Int(m.stats.KilledMaps)
	enc.Int(m.stats.KilledReduces)
	enc.Int(m.stats.BlockReports)
	enc.F64(m.stats.WarmupTime)
	enc.U32(uint32(len(m.events)))
	for _, me := range m.events {
		enc.F64(me.Time)
		enc.Str(string(me.Kind))
		enc.F64(me.WeightedAvailability)
	}
	enc.U32(uint32(len(m.pending)))
	for _, pe := range m.pending {
		enc.Int(int(pe.node))
		enc.Bool(pe.recover)
	}
	unobserved := make([]int, 0, len(m.unobserved))
	for n := range m.unobserved {
		unobserved = append(unobserved, int(n))
	}
	sort.Ints(unobserved)
	enc.U32(uint32(len(unobserved)))
	for _, n := range unobserved {
		enc.Int(n)
	}
	enc.Bool(m.journal != nil)
	if tj := m.journal; tj != nil {
		ids := make([]int32, 0, len(tj.jobs))
		for id := range tj.jobs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
		enc.U32(uint32(len(ids)))
		for _, id := range ids {
			jj := tj.jobs[id]
			enc.Int(int(id))
			enc.Int(jj.numMaps)
			enc.Int(jj.completed)
			enc.Bool(jj.finished)
			enc.Bool(jj.failed)
		}
		enc.U32(uint32(len(tj.blame)))
		for _, b := range tj.blame {
			enc.Int(b)
		}
		enc.Int(tj.finished)
	}

	enc.U32(uint32(len(t.failureEvents)))
	for i := range t.failureEvents {
		encodeFailureEvent(enc, &t.failureEvents[i])
	}
	enc.U32(uint32(len(t.recoveryEvents)))
	for _, re := range t.recoveryEvents {
		enc.F64(re.Time)
		enc.Int(int(re.Node))
		enc.Int(re.Backlog)
		enc.F64(re.WeightedAvailability)
		enc.Int(re.Restored)
	}

	enc.Int(t.repairsDone)
	enc.F64(t.lastRepairAt)
	inFlight := make([]dfs.BlockID, 0, len(t.repairInFlight))
	for b := range t.repairInFlight {
		inFlight = append(inFlight, b)
	}
	sort.Slice(inFlight, func(i, k int) bool { return inFlight[i] < inFlight[k] })
	encodeBlockList(enc, inFlight)

	enc.Bool(t.hb != nil)
	if t.hb != nil {
		t.hb.encodeState(enc)
	}

	if err := t.c.rttG.EncodeState(enc); err != nil {
		return err
	}
	return t.c.noiseG.EncodeState(enc)
}

// DecodeState restores the tracker from an EncodeState image. It must run
// on a freshly reconstructed run, between the engine's BeginRestore and
// FinishRestore (in-flight attempts re-enqueue their completion events at
// exact checkpoint coordinates), with the DFS layer already decoded (the
// locality index is rebuilt against the live replica registry).
func (t *Tracker) DecodeState(d *snapshot.Dec) error {
	for _, n := range t.c.Nodes {
		n.FreeMapSlots = d.Int()
		n.FreeReduceSlots = d.Int()
		n.ActiveRemoteReads = d.Int()
		n.SlowFactor = d.F64()
		n.DiskFactor = d.F64()
		n.Up = d.Bool()
		n.Blacklisted = d.Bool()
	}

	t.totalJobs = d.Int()
	t.completed = d.Int()
	t.streaming = d.Bool()
	nRes := d.Count(8)
	if err := d.Err(); err != nil {
		return err
	}
	t.results = t.results[:0]
	for i := 0; i < nRes; i++ {
		t.results = append(t.results, decodeResult(d))
	}

	nAct := d.Count(8)
	if err := d.Err(); err != nil {
		return err
	}
	for i := 0; i < nAct; i++ {
		j, err := t.decodeJobState(d)
		if err != nil {
			return err
		}
		t.active = append(t.active, j)
		t.jobByID[int32(j.Spec.ID)] = j
	}
	nz := d.Count(8)
	if err := d.Err(); err != nil {
		return err
	}
	zombies := make(map[int32]*Job, nz)
	for i := 0; i < nz; i++ {
		j, err := t.decodeJobState(d)
		if err != nil {
			return err
		}
		zombies[int32(j.Spec.ID)] = j
	}
	lookup := func(id int32) *Job {
		if j := t.jobByID[id]; j != nil {
			return j
		}
		return zombies[id]
	}

	name := d.Str()
	if err := d.Err(); err != nil {
		return err
	}
	if name != t.sel.Name() {
		return fmt.Errorf("mapreduce: state image was written by selector %q, run uses %q", name, t.sel.Name())
	}
	ss, ok := t.sel.(SelectorState)
	if !ok {
		return fmt.Errorf("mapreduce: selector %q does not support state serialization", t.sel.Name())
	}
	if err := ss.DecodeState(d, func(id int) *Job { return t.jobByID[int32(id)] }); err != nil {
		return err
	}

	t.spec.launched = d.Int()
	ng := d.Count(8)
	if err := d.Err(); err != nil {
		return err
	}
	groups := make([]*taskGroup, 0, ng)
	for i := 0; i < ng; i++ {
		id := d.Int()
		b := dfs.BlockID(d.I64())
		started := d.F64()
		done := d.Bool()
		j := lookup(int32(id))
		if j == nil {
			return fmt.Errorf("mapreduce: state image names unknown job %d in attempt group", id)
		}
		groups = append(groups, &taskGroup{
			job: j, block: b, started: started, done: done,
			recs: make(map[*taskRec]bool),
		})
	}
	t.spec.groups = groups
	if d.Bool() {
		if t.spec.qualify == nil {
			rule, err := policy.DefaultSpeculation(t.c.Profile.SpeculativeFactor).Compile(0)
			if err != nil {
				return fmt.Errorf("mapreduce: built-in speculation rule: %w", err)
			}
			t.spec.qualify = rule
		}
		if err := policy.DecodeRuleState(d, t.spec.qualify); err != nil {
			return err
		}
	}

	withRecs := d.Count(8)
	if err := d.Err(); err != nil {
		return err
	}
	for i := 0; i < withRecs; i++ {
		id := d.Int()
		nr := d.Count(8)
		if err := d.Err(); err != nil {
			return err
		}
		if id < 0 || id >= len(t.c.Nodes) {
			return fmt.Errorf("mapreduce: state image names invalid in-flight node %d", id)
		}
		node := t.c.Nodes[id]
		set := make(map[*taskRec]bool, nr)
		for k := 0; k < nr; k++ {
			jid := d.Int()
			isMap := d.Bool()
			when := d.F64()
			seq := d.U64()
			j := lookup(int32(jid))
			if j == nil {
				return fmt.Errorf("mapreduce: state image names unknown job %d in flight", jid)
			}
			rec := &taskRec{job: j, isMap: isMap}
			var fn func()
			if isMap {
				rec.block = dfs.BlockID(d.I64())
				rec.loc = Locality(d.Int())
				rec.dur = d.F64()
				rec.node = node
				gi := d.Int()
				var g *taskGroup
				if gi >= 0 {
					if gi >= len(groups) {
						return fmt.Errorf("mapreduce: state image references attempt group %d of %d", gi, len(groups))
					}
					g = groups[gi]
				} else {
					g = &taskGroup{
						job: j, block: rec.block, started: d.F64(), done: d.Bool(),
						recs: make(map[*taskRec]bool, 1),
					}
				}
				rec.group = g
				g.recs[rec] = true
				r := rec
				fn = func() { t.completeAttempt(r) }
			} else {
				r, jj := rec, j
				fn = func() {
					t.untrack(node, r)
					t.finishReduce(node, jj)
				}
			}
			if err := d.Err(); err != nil {
				return err
			}
			ev := t.c.Eng.RestoreHandle(fn)
			t.c.Eng.RestoreAt(ev, when, seq)
			rec.ev = ev
			set[rec] = true
		}
		t.inflight[node] = set
	}

	h := t.faults
	for i := range h.nodeTaskFailures {
		h.nodeTaskFailures[i] = d.Int()
	}
	nb := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if nb > 0 && nb != len(h.nodeTaskFailures) {
		return fmt.Errorf("mapreduce: state image has %d blacklist rules, run has %d nodes", nb, len(h.nodeTaskFailures))
	}
	for i := 0; i < nb; i++ {
		if d.Bool() {
			if err := policy.DecodeRuleState(d, h.blacklistRule(i)); err != nil {
				return err
			}
		}
	}
	if d.Bool() {
		if err := policy.DecodeRuleState(d, h.failJobRule()); err != nil {
			return err
		}
	}
	if err := decodeOptRNG(d, h.taskFailG); err != nil {
		return err
	}
	if err := decodeOptRNG(d, h.blacklistRNG); err != nil {
		return err
	}

	gs := &t.gray.stats
	gs.Degrades = d.Int()
	gs.Restores = d.Int()
	gs.Flaps = d.Int()
	gs.ReplicasRestored = d.Int()
	gs.CorruptionsInjected = d.Int()
	gs.CorruptionsDetected = d.Int()
	gs.ReadRetries = d.Int()
	gs.HedgedReads = d.Int()
	gs.HedgeWins = d.Int()
	if err := decodeOptRNG(d, t.gray.rng); err != nil {
		return err
	}

	m := &t.master
	m.down = d.Bool()
	m.mode = dfs.RecoveryMode(d.U8())
	m.downSince = d.F64()
	m.recoverAt = d.F64()
	m.outageHeartbeats = d.I64()
	m.outageReads = d.I64()
	m.stats.Outages = d.Int()
	m.stats.Downtime = d.F64()
	m.stats.DeferredHeartbeats = d.I64()
	m.stats.DeferredReads = d.I64()
	m.stats.KilledMaps = d.Int()
	m.stats.KilledReduces = d.Int()
	m.stats.BlockReports = d.Int()
	m.stats.WarmupTime = d.F64()
	ne := d.Count(8)
	if err := d.Err(); err != nil {
		return err
	}
	for i := 0; i < ne; i++ {
		me := MasterEvent{Time: d.F64()}
		me.Kind = MasterEventKind(d.Str())
		me.WeightedAvailability = d.F64()
		m.events = append(m.events, me)
	}
	npend := d.Count(8)
	if err := d.Err(); err != nil {
		return err
	}
	for i := 0; i < npend; i++ {
		pe := pendingNodeEvent{node: topology.NodeID(d.Int())}
		pe.recover = d.Bool()
		m.pending = append(m.pending, pe)
	}
	nun := d.Count(8)
	if err := d.Err(); err != nil {
		return err
	}
	if nun > 0 && m.unobserved == nil {
		return fmt.Errorf("mapreduce: state image carries master outage state but master recovery is not enabled")
	}
	for i := 0; i < nun; i++ {
		m.unobserved[topology.NodeID(d.Int())] = true
	}
	hasJournal := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hasJournal != (m.journal != nil) {
		return fmt.Errorf("mapreduce: tracker journal presence mismatch in state image")
	}
	if tj := m.journal; hasJournal {
		nj := d.Count(8)
		if err := d.Err(); err != nil {
			return err
		}
		for i := 0; i < nj; i++ {
			id := int32(d.Int())
			jj := &journalJob{numMaps: d.Int(), completed: d.Int()}
			jj.finished = d.Bool()
			jj.failed = d.Bool()
			tj.jobs[id] = jj
		}
		nbl := int(d.U32())
		if err := d.Err(); err != nil {
			return err
		}
		if nbl != len(tj.blame) {
			return fmt.Errorf("mapreduce: state image has %d blame counters, run has %d nodes", nbl, len(tj.blame))
		}
		for i := 0; i < nbl; i++ {
			tj.blame[i] = d.Int()
		}
		tj.finished = d.Int()
	}

	nfe := d.Count(8)
	if err := d.Err(); err != nil {
		return err
	}
	for i := 0; i < nfe; i++ {
		t.failureEvents = append(t.failureEvents, decodeFailureEvent(d))
	}
	nre := d.Count(8)
	if err := d.Err(); err != nil {
		return err
	}
	for i := 0; i < nre; i++ {
		re := RecoveryEvent{Time: d.F64()}
		re.Node = topology.NodeID(d.Int())
		re.Backlog = d.Int()
		re.WeightedAvailability = d.F64()
		re.Restored = d.Int()
		t.recoveryEvents = append(t.recoveryEvents, re)
	}

	t.repairsDone = d.Int()
	t.lastRepairAt = d.F64()
	for _, b := range decodeBlockList(d) {
		t.repairInFlight[b] = true
	}

	hasHB := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hasHB != (t.hb != nil) {
		return fmt.Errorf("mapreduce: heartbeat driver presence mismatch in state image")
	}
	if hasHB {
		if err := t.hb.decodeState(d); err != nil {
			return err
		}
	}

	if err := t.c.rttG.DecodeState(d); err != nil {
		return err
	}
	if err := t.c.noiseG.DecodeState(d); err != nil {
		return err
	}
	return d.Err()
}

// encodeState serializes the heartbeat driver: cohort slot tables and
// grid positions (coalesced mode) or per-node tickers. Member identity is
// the node ID — handles are index-aligned with Cluster.Nodes.
func (hb *heartbeatDriver) encodeState(enc *snapshot.Enc) {
	enc.Bool(hb.ct != nil)
	if hb.ct != nil {
		id := make(map[*sim.CohortMember]int64, len(hb.handles))
		for i, h := range hb.handles {
			if m, ok := h.(*sim.CohortMember); ok {
				id[m] = int64(i)
			}
		}
		cohorts := hb.ct.Cohorts()
		enc.U32(uint32(len(cohorts)))
		for _, co := range cohorts {
			co.EncodeState(enc, func(m *sim.CohortMember) int64 { return id[m] })
		}
		return
	}
	enc.U32(uint32(len(hb.tickers)))
	for _, tk := range hb.tickers {
		tk.EncodeState(enc)
	}
}

func (hb *heartbeatDriver) decodeState(d *snapshot.Dec) error {
	coalesced := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if coalesced != (hb.ct != nil) {
		return fmt.Errorf("mapreduce: heartbeat driver mode mismatch in state image")
	}
	if coalesced {
		cohorts := hb.ct.Cohorts()
		n := int(d.U32())
		if err := d.Err(); err != nil {
			return err
		}
		if n != len(cohorts) {
			return fmt.Errorf("mapreduce: state image has %d heartbeat cohorts, run has %d", n, len(cohorts))
		}
		member := func(id int64) *sim.CohortMember {
			if id < 0 || id >= int64(len(hb.handles)) {
				return nil
			}
			m, _ := hb.handles[id].(*sim.CohortMember)
			return m
		}
		for _, co := range cohorts {
			if err := co.DecodeState(d, member); err != nil {
				return err
			}
		}
		return d.Err()
	}
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(hb.tickers) {
		return fmt.Errorf("mapreduce: state image has %d heartbeat tickers, run has %d", n, len(hb.tickers))
	}
	for _, tk := range hb.tickers {
		if err := tk.DecodeState(d); err != nil {
			return err
		}
	}
	return d.Err()
}
