package mapreduce

import (
	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/stats"
)

// DefaultMaxTaskAttempts mirrors Hadoop's mapred.map.max.attempts: a map
// input whose attempts fail this many times fails its whole job.
const DefaultMaxTaskAttempts = 4

// DefaultBlacklistAfter is the per-node failed-attempt count at which the
// job tracker stops scheduling on a node until it re-registers.
const DefaultBlacklistAfter = 3

// failureHandler owns task-attempt robustness: attempt limits,
// exponential retry backoff, per-node failure accounting, and the
// tasktracker blacklist. It subscribes to the cluster bus — TaskFail
// events drive blame and requeueing, NodeRecover forgives the blacklist —
// instead of being welded into the tracker's execution path.
type failureHandler struct {
	t *Tracker

	maxTaskAttempts  int
	blacklistAfter   int
	nodeTaskFailures []int
	taskFailProb     float64
	taskFailG        *stats.RNG
}

func newFailureHandler(t *Tracker) *failureHandler {
	return &failureHandler{
		t:                t,
		maxTaskAttempts:  DefaultMaxTaskAttempts,
		blacklistAfter:   DefaultBlacklistAfter,
		nodeTaskFailures: make([]int, len(t.c.Nodes)),
	}
}

// HandleEvent implements event.Subscriber.
//
// TaskFail carries two independent verdicts: Flag=true blames the node
// that ran the attempt (flaky-disk/JVM injection — node deaths are not the
// node's "fault" in blacklist terms, matching Hadoop), and Aux=1 means no
// sibling attempt survives so the input must be requeued (or the job
// failed, past the attempt limit).
func (h *failureHandler) HandleEvent(ev event.Event) {
	switch ev.Kind {
	case event.TaskFail:
		if ev.Flag {
			h.noteNodeTaskFailure(h.t.c.Nodes[ev.Node])
		}
		if ev.Aux == 1 {
			if j := h.t.jobByID[ev.Job]; j != nil {
				h.requeueOrFail(j, dfs.BlockID(ev.Block))
			}
		}
	case event.NodeRecover:
		// Re-registration forgives the blacklist, as in Hadoop.
		node := h.t.c.Nodes[ev.Node]
		node.Blacklisted = false
		h.nodeTaskFailures[ev.Node] = 0
	}
}

// injectedFailure draws the flaky-task coin. p = 0 (the default) draws
// nothing, leaving existing runs bit-identical.
func (h *failureHandler) injectedFailure() bool {
	return h.taskFailProb > 0 && h.taskFailG.Float64() < h.taskFailProb
}

// requeueOrFail puts a killed/failed map input back in the pending set
// with exponential backoff, or fails its job once the block has burned
// maxTaskAttempts attempts.
func (h *failureHandler) requeueOrFail(j *Job, b dfs.BlockID) {
	if j.finished {
		return
	}
	if j.attempts == nil {
		j.attempts = make(map[dfs.BlockID]int)
	}
	j.attempts[b]++
	n := j.attempts[b]
	if h.maxTaskAttempts > 0 && n >= h.maxTaskAttempts {
		h.failJob(j)
		return
	}
	// Exponential backoff in heartbeat units: 1, 2, 4, ... intervals. The
	// first retry waits one interval — the killed attempt's slot report
	// would not reach the job tracker sooner anyway.
	backoff := h.t.c.Profile.HeartbeatInterval * float64(int64(1)<<uint(n-1))
	h.t.c.Eng.Defer(backoff, func() {
		if !j.finished {
			j.Requeue(b)
		}
	})
}

// failJob terminates a job whose task exhausted its attempts: Hadoop fails
// the job rather than retrying forever. The job leaves the scheduler and
// reports a failed Result stamped at the failure time.
func (h *failureHandler) failJob(j *Job) {
	if j.finished {
		return
	}
	j.failed = true
	h.t.finishJob(j)
}

// noteNodeTaskFailure counts one failed attempt against node and
// blacklists it at the threshold — unless that would leave the scheduler
// no usable node at all.
func (h *failureHandler) noteNodeTaskFailure(node *Node) {
	if h.blacklistAfter <= 0 || !node.Up {
		return
	}
	// Count the failure even on an already-blacklisted node (its in-flight
	// attempts can still fail after the verdict): the counter must match
	// the journaled blame ledger record for record, and NodeRecover resets
	// both together.
	h.nodeTaskFailures[node.ID]++
	if node.Blacklisted || h.nodeTaskFailures[node.ID] < h.blacklistAfter {
		return
	}
	usable := 0
	for _, n := range h.t.c.Nodes {
		if n.Up && !n.Blacklisted {
			usable++
		}
	}
	if usable <= 1 {
		return // never blacklist the last schedulable node
	}
	node.Blacklisted = true
}

// SetMaxTaskAttempts overrides the per-task attempt limit (<= 0 retries
// forever). Call before Run.
func (t *Tracker) SetMaxTaskAttempts(n int) { t.faults.maxTaskAttempts = n }

// SetBlacklistAfter overrides the per-node failed-attempt threshold for
// blacklisting (<= 0 disables blacklisting). Call before Run.
func (t *Tracker) SetBlacklistAfter(k int) { t.faults.blacklistAfter = k }

// SetTaskFailureInjection makes each map attempt fail on completion with
// probability p, drawn from rng — the deterministic stand-in for flaky
// disks/JVMs that exercises retry, backoff, and blacklisting on *up*
// nodes. p = 0 (the default) draws nothing, leaving existing runs
// bit-identical. Call before Run.
func (t *Tracker) SetTaskFailureInjection(p float64, rng *stats.RNG) {
	t.faults.taskFailProb = p
	t.faults.taskFailG = rng
}

// Blacklisted reports how many nodes are currently blacklisted.
func (t *Tracker) Blacklisted() int {
	n := 0
	for _, node := range t.c.Nodes {
		if node.Blacklisted {
			n++
		}
	}
	return n
}
