package mapreduce

import (
	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/policy"
	"dare/internal/stats"
)

// DefaultMaxTaskAttempts mirrors Hadoop's mapred.map.max.attempts: a map
// input whose attempts fail this many times fails its whole job.
const DefaultMaxTaskAttempts = 4

// DefaultBlacklistAfter is the per-node failed-attempt count at which the
// job tracker stops scheduling on a node until it re-registers.
const DefaultBlacklistAfter = 3

// failureHandler owns task-attempt robustness: attempt limits,
// exponential retry backoff, per-node failure accounting, and the
// tasktracker blacklist. It subscribes to the cluster bus — TaskFail
// events drive blame and requeueing, NodeRecover forgives the blacklist —
// instead of being welded into the tracker's execution path.
type failureHandler struct {
	t *Tracker

	maxTaskAttempts  int
	blacklistAfter   int
	nodeTaskFailures []int
	taskFailProb     float64
	taskFailG        *stats.RNG

	// Declarative gates. Both compile lazily: the built-in blacklist gate
	// is node_failures >= blacklistAfter and the built-in job-fail gate is
	// attempts >= maxTaskAttempts, so the rules always reflect the latest
	// Set{BlacklistAfter,MaxTaskAttempts} values. A config-file blacklist
	// spec compiles once per node (stateful rules like ratewindow must not
	// share their burst history across nodes), seeded from blacklistRNG.
	blacklistSpec  *policy.RuleSpec
	blacklistRNG   *stats.RNG
	blacklistRules []policy.Rule
	failRule       policy.Rule
	failRuleCustom bool
	ctx            faultCtx
}

// faultCtx exposes failure-accounting signals to the gates:
// "node_failures" (failed attempts blamed on the node since its last
// recovery), "attempts" (attempts burned by the task input), and "now".
type faultCtx struct {
	failures float64
	attempts float64
	now      float64

	hasFailures bool
	hasAttempts bool
}

// Val implements policy.Context.
func (c *faultCtx) Val(key string) (float64, bool) {
	switch key {
	case "node_failures":
		return c.failures, c.hasFailures
	case "attempts":
		return c.attempts, c.hasAttempts
	case "now":
		return c.now, true
	}
	return 0, false
}

func newFailureHandler(t *Tracker) *failureHandler {
	return &failureHandler{
		t:                t,
		maxTaskAttempts:  DefaultMaxTaskAttempts,
		blacklistAfter:   DefaultBlacklistAfter,
		nodeTaskFailures: make([]int, len(t.c.Nodes)),
	}
}

// HandleEvent implements event.Subscriber.
//
// TaskFail carries two independent verdicts: Flag=true blames the node
// that ran the attempt (flaky-disk/JVM injection — node deaths are not the
// node's "fault" in blacklist terms, matching Hadoop), and Aux=1 means no
// sibling attempt survives so the input must be requeued (or the job
// failed, past the attempt limit).
func (h *failureHandler) HandleEvent(ev event.Event) {
	switch ev.Kind {
	case event.TaskFail:
		if ev.Flag {
			h.noteNodeTaskFailure(h.t.c.Nodes[ev.Node])
		}
		if ev.Aux == 1 {
			if j := h.t.jobByID[ev.Job]; j != nil {
				h.requeueOrFail(j, dfs.BlockID(ev.Block))
			}
		}
	case event.NodeRecover:
		// Re-registration forgives the blacklist, as in Hadoop.
		node := h.t.c.Nodes[ev.Node]
		node.Blacklisted = false
		h.nodeTaskFailures[ev.Node] = 0
	}
}

// injectedFailure draws the flaky-task coin. p = 0 (the default) draws
// nothing, leaving existing runs bit-identical.
func (h *failureHandler) injectedFailure() bool {
	return h.taskFailProb > 0 && h.taskFailG.Float64() < h.taskFailProb
}

// requeueOrFail puts a killed/failed map input back in the pending set
// with exponential backoff, or fails its job once the block has burned
// maxTaskAttempts attempts.
func (h *failureHandler) requeueOrFail(j *Job, b dfs.BlockID) {
	if j.finished {
		return
	}
	if j.attempts == nil {
		j.attempts = make(map[dfs.BlockID]int)
	}
	j.attempts[b]++
	n := j.attempts[b]
	if h.maxTaskAttempts > 0 {
		h.ctx.failures, h.ctx.hasFailures = 0, false
		h.ctx.attempts, h.ctx.hasAttempts = float64(n), true
		h.ctx.now = h.t.c.Eng.Now()
		if h.failJobRule().Eval(&h.ctx) {
			h.failJob(j)
			return
		}
	}
	// Exponential backoff in heartbeat units: 1, 2, 4, ... intervals. The
	// first retry waits one interval — the killed attempt's slot report
	// would not reach the job tracker sooner anyway.
	backoff := h.t.c.Profile.HeartbeatInterval * float64(int64(1)<<uint(n-1))
	h.t.c.Eng.DeferTag(backoff, requeueTag{job: j.Spec.ID, b: b}, func() {
		if !j.finished {
			j.Requeue(b)
		}
	})
}

// failJob terminates a job whose task exhausted its attempts: Hadoop fails
// the job rather than retrying forever. The job leaves the scheduler and
// reports a failed Result stamped at the failure time.
func (h *failureHandler) failJob(j *Job) {
	if j.finished {
		return
	}
	j.failed = true
	h.t.finishJob(j)
}

// noteNodeTaskFailure counts one failed attempt against node and
// blacklists it when the gate fires — unless that would leave the
// scheduler no usable node at all.
func (h *failureHandler) noteNodeTaskFailure(node *Node) {
	if h.blacklistAfter <= 0 || !node.Up {
		return
	}
	// Count the failure even on an already-blacklisted node (its in-flight
	// attempts can still fail after the verdict): the counter must match
	// the journaled blame ledger record for record, and NodeRecover resets
	// both together.
	h.nodeTaskFailures[node.ID]++
	// The gate is evaluated even for blacklisted nodes so stateful rules
	// (e.g. a failure-burst ratewindow) observe every failure.
	h.ctx.failures, h.ctx.hasFailures = float64(h.nodeTaskFailures[node.ID]), true
	h.ctx.attempts, h.ctx.hasAttempts = 0, false
	h.ctx.now = h.t.c.Eng.Now()
	fired := h.blacklistRule(int(node.ID)).Eval(&h.ctx)
	if node.Blacklisted || !fired {
		return
	}
	usable := 0
	for _, n := range h.t.c.Nodes {
		if n.Up && !n.Blacklisted {
			usable++
		}
	}
	if usable <= 1 {
		return // never blacklist the last schedulable node
	}
	node.Blacklisted = true
}

// failJobRule returns the job-fail gate, compiling the built-in from the
// current maxTaskAttempts when no custom rule is set.
func (h *failureHandler) failJobRule() policy.Rule {
	if h.failRule == nil {
		rule, err := policy.DefaultFailJob(h.maxTaskAttempts).Compile(0)
		if err != nil {
			panic("mapreduce: built-in fail-job rule: " + err.Error())
		}
		h.failRule = rule
	}
	return h.failRule
}

// blacklistRule returns node's blacklist gate, compiling it on first use.
func (h *failureHandler) blacklistRule(node int) policy.Rule {
	if h.blacklistRules == nil {
		h.blacklistRules = make([]policy.Rule, len(h.nodeTaskFailures))
	}
	if h.blacklistRules[node] == nil {
		spec := h.blacklistSpec
		if spec == nil {
			spec = policy.DefaultBlacklist(h.blacklistAfter)
		}
		rng := stats.NewRNG(0)
		if h.blacklistRNG != nil {
			rng = h.blacklistRNG.Split(uint64(node) + 1)
		}
		rule, err := spec.CompileWith(rng)
		if err != nil {
			// Config specs are validated at load time; fall back defensively.
			rule, _ = policy.DefaultBlacklist(h.blacklistAfter).Compile(0)
		}
		h.blacklistRules[node] = rule
	}
	return h.blacklistRules[node]
}

// SetMaxTaskAttempts overrides the per-task attempt limit (<= 0 retries
// forever). Call before Run.
func (t *Tracker) SetMaxTaskAttempts(n int) {
	t.faults.maxTaskAttempts = n
	if !t.faults.failRuleCustom {
		t.faults.failRule = nil // recompile the built-in from the new limit
	}
}

// SetBlacklistAfter overrides the per-node failed-attempt threshold for
// blacklisting (<= 0 disables blacklisting). Call before Run.
func (t *Tracker) SetBlacklistAfter(k int) {
	t.faults.blacklistAfter = k
	if t.faults.blacklistSpec == nil {
		t.faults.blacklistRules = nil // recompile built-ins from the new threshold
	}
}

// SetBlacklistRuleSpec replaces the node-blacklist gate with a config
// rule. The spec compiles once per node (stateful rules keep per-node
// state), seeded from rng substreams. Call before Run.
func (t *Tracker) SetBlacklistRuleSpec(spec *policy.RuleSpec, rng *stats.RNG) {
	t.faults.blacklistSpec = spec
	t.faults.blacklistRNG = rng
	t.faults.blacklistRules = nil
}

// SetFailJobRule replaces the attempt-limit job-fail gate with a
// compiled config rule. The native maxTaskAttempts > 0 guard still
// applies: <= 0 disables job failing entirely. Call before Run.
func (t *Tracker) SetFailJobRule(r policy.Rule) {
	t.faults.failRule = r
	t.faults.failRuleCustom = r != nil
}

// SetTaskFailureInjection makes each map attempt fail on completion with
// probability p, drawn from rng — the deterministic stand-in for flaky
// disks/JVMs that exercises retry, backoff, and blacklisting on *up*
// nodes. p = 0 (the default) draws nothing, leaving existing runs
// bit-identical. Call before Run.
func (t *Tracker) SetTaskFailureInjection(p float64, rng *stats.RNG) {
	t.faults.taskFailProb = p
	t.faults.taskFailG = rng
}

// Blacklisted reports how many nodes are currently blacklisted.
func (t *Tracker) Blacklisted() int {
	n := 0
	for _, node := range t.c.Nodes {
		if node.Blacklisted {
			n++
		}
	}
	return n
}
