package mapreduce

import (
	"dare/internal/sim"
	"dare/internal/topology"
)

// heartbeatCohortSize picks how many same-rack nodes share one coalesced
// heartbeat event on an n-node cluster. Cohorts never cross racks — a
// rack failure must stop a whole cohort's worth of members without
// touching another rack's schedule — and the size scales with the
// cluster: paper-scale clusters (< 256 nodes) get singleton cohorts,
// which makes the cohort phase assignment interval·i/n — bit-identical
// to the historical per-node de-synchronization, so small-cluster
// experiments are untouched. Past that the stride grows toward 8, where
// one engine event sweeps eight heartbeats and the dominant event class
// shrinks 8x. Tests force a specific size to exercise real sweeps at
// small scale.
func heartbeatCohortSize(n int) int {
	s := n / 128
	if s < 1 {
		s = 1
	}
	if s > 8 {
		s = 8
	}
	return s
}

// heartbeatHandle is one node's heartbeat stream, independent of driver
// mode. Both sim.Ticker (per-node mode) and sim.CohortMember (coalesced
// mode) satisfy it: Stop halts the stream in O(1), Resume rejoins the
// node's original phase grid at the next instant.
type heartbeatHandle interface {
	Stop()
	Resume()
}

// heartbeatDriver owns every node's heartbeat stream. In the default
// coalesced mode it schedules one engine event per (rack, stride) cohort
// per interval and sweeps the member callbacks in node order; in per-node
// mode (equivalence testing) each node gets its own sim.Ticker. Both
// modes assign each node the phase of its cohort — computed identically —
// so the two drivers publish byte-identical heartbeat event streams: same
// instants, and at each shared instant the same node order (engine FIFO
// tie-break equals activation order equals cohort sweep order).
type heartbeatDriver struct {
	handles []heartbeatHandle // index-aligned with Cluster.Nodes
	ct      *sim.CohortTicker // nil in per-node mode
	tickers []*sim.Ticker     // nil in coalesced mode
	cohorts int
}

// newHeartbeatDriver starts heartbeats for every node of c at the given
// interval, calling beat(node) once per node per interval. Cohorts are
// per-rack chunks of cohortSize nodes in ID order (cohortSize <= 0 means
// heartbeatCohortSize(n), the default); cohort i of C starts with phase
// interval·i/C, so cohorts are de-synchronized exactly as individual
// nodes were, just at cohort granularity.
func newHeartbeatDriver(c *Cluster, interval float64, cohortSize int, perNode bool, beat func(*Node)) *heartbeatDriver {
	n := len(c.Nodes)
	if cohortSize <= 0 {
		cohortSize = heartbeatCohortSize(n)
	}
	// Enumerate cohorts in order of first member (node ID) appearance:
	// deterministic for any topology, and equal to (rack, stride) order on
	// contiguous dedicated racks.
	cohortOf := make([]int, n)
	type cohortKey struct{ rack, stride int }
	index := make(map[cohortKey]int)
	for i := 0; i < n; i++ {
		k := cohortKey{c.Topo.Rack(topology.NodeID(i)), c.rackOrdinal[i] / cohortSize}
		id, ok := index[k]
		if !ok {
			id = len(index)
			index[k] = id
		}
		cohortOf[i] = id
	}
	numCohorts := len(index)
	phases := make([]float64, numCohorts)
	for i := range phases {
		phases[i] = interval * float64(i) / float64(numCohorts)
	}
	d := &heartbeatDriver{handles: make([]heartbeatHandle, n), cohorts: numCohorts}
	if perNode {
		d.tickers = make([]*sim.Ticker, n)
		for i, node := range c.Nodes {
			node := node
			tk := sim.NewTicker(c.Eng, interval, func() { beat(node) })
			tk.Start(phases[cohortOf[i]])
			d.tickers[i] = tk
			d.handles[i] = tk
		}
		return d
	}
	d.ct = sim.NewCohortTicker(c.Eng, interval)
	cohorts := make([]*sim.Cohort, numCohorts)
	for i := range cohorts {
		cohorts[i] = d.ct.NewCohort(phases[i])
	}
	// Members join in node ID order, so each cohort sweeps its nodes in
	// the order their per-node first events would have been enqueued.
	for i, node := range c.Nodes {
		node := node
		d.handles[i] = cohorts[cohortOf[i]].Add(func() { beat(node) })
	}
	return d
}

// Stop halts node id's heartbeat stream (node failure).
func (d *heartbeatDriver) Stop(id topology.NodeID) {
	if d != nil && int(id) < len(d.handles) {
		d.handles[id].Stop()
	}
}

// Resume restarts node id's heartbeat stream on its original phase grid
// (node recovery or flap rejoin): the next beat is the node's next
// scheduled instant, not a full interval away.
func (d *heartbeatDriver) Resume(id topology.NodeID) {
	if d != nil && int(id) < len(d.handles) {
		d.handles[id].Resume()
	}
}

// StopAll halts every stream (end of the tracking horizon).
func (d *heartbeatDriver) StopAll() {
	if d == nil {
		return
	}
	for _, h := range d.handles {
		h.Stop()
	}
}
