package mapreduce_test

import (
	"testing"

	"dare/internal/config"
	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/mapreduce"
	"dare/internal/scheduler"
	"dare/internal/stats"
	"dare/internal/topology"
	"dare/internal/workload"
)

// grayFixture builds a small cluster + tracker pair for gray-failure tests.
func grayFixture(t *testing.T, p *config.Profile, seed uint64, jobs int) (*mapreduce.Cluster, *mapreduce.Tracker) {
	t.Helper()
	c, err := mapreduce.NewCluster(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.Generate(workload.GenConfig{NumJobs: jobs, NumFiles: 15, Seed: seed})
	tr, err := mapreduce.NewTracker(c, wl, scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	return c, tr
}

// launchLog records which node every task launch (original or speculative)
// landed on.
type launchLog struct {
	launches map[topology.NodeID]int
	kinds    map[event.Kind]int
}

func newLaunchLog() *launchLog {
	return &launchLog{launches: make(map[topology.NodeID]int), kinds: make(map[event.Kind]int)}
}

func (l *launchLog) HandleEvent(ev event.Event) {
	l.kinds[ev.Kind]++
	if ev.Kind == event.TaskLaunch || ev.Kind == event.TaskSpeculate {
		l.launches[topology.NodeID(ev.Node)]++
	}
}

func TestDegradeRestoreLifecycle(t *testing.T) {
	p := config.CCT()
	p.Slaves = 10
	c, tr := grayFixture(t, p, 1, 40)
	log := newLaunchLog()
	c.Bus.Subscribe(log)
	// Restores must land before the workload drains (the engine stops with
	// the last job, dropping any injection scheduled past that point).
	tr.ScheduleNodeDegrade(2, 4, false, 1)
	tr.ScheduleNodeDegrade(5, 3, true, 1)
	tr.ScheduleNodeRestore(2, 8)
	tr.ScheduleNodeRestore(5, 8)
	tr.SetInvariantChecks(true)
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	g := tr.Gray()
	if g.Degrades != 2 || g.Restores != 2 {
		t.Fatalf("degrades=%d restores=%d, want 2/2", g.Degrades, g.Restores)
	}
	if log.kinds[event.NodeDegrade] != 2 || log.kinds[event.NodeRestore] != 2 {
		t.Fatalf("bus saw %d degrade / %d restore events, want 2/2",
			log.kinds[event.NodeDegrade], log.kinds[event.NodeRestore])
	}
	for _, id := range []topology.NodeID{2, 5} {
		if c.Nodes[id].SlowFactor != 1 || c.Nodes[id].DiskFactor != 1 {
			t.Fatalf("node %d not restored: slow=%g disk=%g", id, c.Nodes[id].SlowFactor, c.Nodes[id].DiskFactor)
		}
	}
}

func TestRestoreHealthyNodeIsNoOp(t *testing.T) {
	p := config.CCT()
	p.Slaves = 8
	_, tr := grayFixture(t, p, 2, 20)
	tr.ScheduleNodeRestore(1, 5)
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if g := tr.Gray(); g.Restores != 0 {
		t.Fatalf("restoring a healthy node counted: %d", g.Restores)
	}
}

// Satellite: a slow (degraded, non-dead) node must still trigger
// speculation — the gray path stresses the speculator, not the kill path.
func TestDegradedNodeTriggersSpeculation(t *testing.T) {
	p := config.CCT()
	p.Slaves = 10
	p.SpeculativeExecution = true
	p.TaskNoiseSigma = 0.05 // nearly noise-free: only degradation makes stragglers
	_, tr := grayFixture(t, p, 3, 60)
	// A 16x slowdown makes every task on the node an unambiguous straggler;
	// with FIFO keeping slots busy, milder degradations leave too few idle
	// heartbeats for a backup to be a robust expectation.
	tr.ScheduleNodeDegrade(3, 16, false, 0)
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.SpeculativeLaunches() == 0 {
		t.Fatal("no backups launched against a node degraded 16x")
	}
}

// Satellite: speculative backups must never land on a blacklisted node.
// The blacklisted tracker reports in but is offered no work, so neither
// the scheduler round nor the speculator (which fills slots on the
// Heartbeat event) can place anything there.
func TestSpeculationSkipsBlacklistedNode(t *testing.T) {
	p := config.EC2()
	p.Slaves = 12
	p.TaskNoiseSigma = 0.6
	p.SpeculativeExecution = true
	c, tr := grayFixture(t, p, 4, 80)
	log := newLaunchLog()
	c.Bus.Subscribe(log)
	const bad = topology.NodeID(5)
	c.Nodes[bad].Blacklisted = true
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.SpeculativeLaunches() == 0 {
		t.Skip("no backups fired for this seed; assertion would be vacuous")
	}
	if n := log.launches[bad]; n != 0 {
		t.Fatalf("%d launches landed on the blacklisted node", n)
	}
}

func TestCorruptionDetectedQuarantinedAndRetried(t *testing.T) {
	p := config.CCT()
	p.Slaves = 10
	c, tr := grayFixture(t, p, 5, 60)
	log := newLaunchLog()
	c.Bus.Subscribe(log)
	hb := p.HeartbeatInterval
	tr.EnableGrayReads(3*hb, hb/2, 4*hb, stats.NewRNG(5).Split(0x6A47))
	// Corrupt one replica of each of the first 30 blocks before any job
	// arrives: readers detect the damage via checksums.
	for b := 0; b < 30; b++ {
		tr.ScheduleBlockCorruption(dfs.BlockID(b), -1, 0.5)
	}
	tr.SetInvariantChecks(true)
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Gray()
	if g.CorruptionsInjected != 30 {
		t.Fatalf("injected %d corruptions, want 30", g.CorruptionsInjected)
	}
	if g.CorruptionsDetected == 0 {
		t.Fatal("no corruption detected despite 30 corrupt replicas and gray reads")
	}
	if g.ReadRetries < g.CorruptionsDetected {
		t.Fatalf("retries %d < detections %d: every detection must retry", g.ReadRetries, g.CorruptionsDetected)
	}
	if log.kinds[event.ReplicaCorrupt] != g.CorruptionsDetected {
		t.Fatalf("bus saw %d quarantines, stats say %d", log.kinds[event.ReplicaCorrupt], g.CorruptionsDetected)
	}
	if log.kinds[event.ReadRetry] != g.ReadRetries {
		t.Fatalf("bus saw %d retries, stats say %d", log.kinds[event.ReadRetry], g.ReadRetries)
	}
	for _, r := range results {
		if r.Local+r.Rack+r.Remote != r.NumMaps {
			t.Fatalf("job %d lost tasks under corruption", r.ID)
		}
	}
	// Detected corruption must be gone from the registry; only latent
	// (never-read) marks may remain.
	if c.NN.CorruptReplicas() > g.CorruptionsInjected-g.CorruptionsDetected {
		t.Fatalf("%d corrupt replicas remain after %d detections", c.NN.CorruptReplicas(), g.CorruptionsDetected)
	}
}

func TestHedgedReadsFire(t *testing.T) {
	p := config.CCT()
	p.Slaves = 10
	c, tr := grayFixture(t, p, 6, 60)
	log := newLaunchLog()
	c.Bus.Subscribe(log)
	// A vanishingly small hedge timeout makes every remote read hedge.
	tr.EnableGrayReads(1e-6, 1, 10, nil)
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	g := tr.Gray()
	if g.HedgedReads == 0 {
		t.Fatal("no hedged reads despite an always-fire timeout")
	}
	if g.HedgeWins > g.HedgedReads {
		t.Fatalf("hedge wins %d exceed hedged reads %d", g.HedgeWins, g.HedgedReads)
	}
	if log.kinds[event.HedgedRead] != g.HedgedReads {
		t.Fatalf("bus saw %d hedge events, stats say %d", log.kinds[event.HedgedRead], g.HedgedReads)
	}
}

func TestFlapRestoresStaleReplicas(t *testing.T) {
	p := config.CCT()
	p.Slaves = 10
	c, tr := grayFixture(t, p, 7, 60)
	tr.ScheduleNodeFlap(3, 5, 30)
	tr.SetInvariantChecks(true)
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 60 {
		t.Fatalf("results %d", len(results))
	}
	g := tr.Gray()
	if g.Flaps != 1 {
		t.Fatalf("flaps=%d, want 1", g.Flaps)
	}
	fes := tr.FailureEvents()
	if len(fes) != 1 || !fes[0].Flap {
		t.Fatalf("failure events %v: want one flap-tagged failure", fes)
	}
	res := tr.RecoveryEvents()
	if len(res) != 1 {
		t.Fatalf("recovery events %d, want 1", len(res))
	}
	lost := len(fes[0].Report.LostPrimaries) + len(fes[0].Report.LostDynamic)
	if res[0].Restored != lost {
		t.Fatalf("restored %d of %d scrubbed replicas", res[0].Restored, lost)
	}
	if g.ReplicasRestored != res[0].Restored {
		t.Fatalf("stats restored %d, event says %d", g.ReplicasRestored, res[0].Restored)
	}
	if !c.Nodes[3].Up || c.NN.NodeFailed(3) {
		t.Fatal("flapped node did not rejoin")
	}
	if err := c.NN.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The gray read path with hedging disabled and nothing injected must be
// byte-identical to the plain read path: same sources, same RNG draws,
// same NIC accounting.
func TestGrayReadPathCleanRunIdentical(t *testing.T) {
	run := func(gray bool) []mapreduce.Result {
		p := config.CCT()
		p.Slaves = 10
		_, tr := grayFixture(t, p, 8, 60)
		if gray {
			tr.EnableGrayReads(0, 1, 10, nil)
		}
		results, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	plain, grayed := run(false), run(true)
	for i := range plain {
		if plain[i] != grayed[i] {
			t.Fatalf("result %d differs between plain and clean gray read paths:\n%+v\n%+v",
				i, plain[i], grayed[i])
		}
	}
}

func TestGrayInjectionDeterministic(t *testing.T) {
	run := func() (mapreduce.GrayStats, []mapreduce.Result) {
		p := config.CCT()
		p.Slaves = 10
		p.SpeculativeExecution = true
		_, tr := grayFixture(t, p, 9, 60)
		hb := p.HeartbeatInterval
		tr.EnableGrayReads(3*hb, hb/2, 4*hb, stats.NewRNG(9).Split(0x6A47))
		tr.ScheduleNodeDegrade(1, 5, false, 3)
		tr.ScheduleNodeRestore(1, 40)
		tr.ScheduleNodeFlap(4, 10, 25)
		for i := 0; i < 10; i++ {
			tr.ScheduleRandomCorruption(float64(i))
		}
		tr.SetInvariantChecks(true)
		results, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return tr.Gray(), results
	}
	ga, ra := run()
	gb, rb := run()
	if ga != gb {
		t.Fatalf("gray stats differ between identical runs:\n%+v\n%+v", ga, gb)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("result %d differs between identical runs", i)
		}
	}
}

func TestGrayInvalidSchedules(t *testing.T) {
	cases := []func(tr *mapreduce.Tracker){
		func(tr *mapreduce.Tracker) { tr.ScheduleNodeDegrade(99, 2, false, 1) },
		func(tr *mapreduce.Tracker) { tr.ScheduleNodeDegrade(1, 0.5, false, 1) },
		func(tr *mapreduce.Tracker) { tr.ScheduleNodeRestore(-2, 1) },
		func(tr *mapreduce.Tracker) { tr.ScheduleNodeFlap(99, 1, 5) },
		func(tr *mapreduce.Tracker) { tr.ScheduleNodeFlap(1, 1, 0) },
	}
	for i, inject := range cases {
		p := config.CCT()
		p.Slaves = 6
		_, tr := grayFixture(t, p, 10, 5)
		inject(tr)
		if _, err := tr.Run(); err == nil {
			t.Fatalf("case %d: invalid gray schedule accepted", i)
		}
	}
}
