package mapreduce

import (
	"math/rand"
	"sort"
	"testing"

	"dare/internal/dfs"
)

// TestBlockHeapOrdering checks the hand-rolled min-heap pops in ascending
// seq order regardless of push order — the property that makes the indexed
// block selection agree with the original linear scan.
func TestBlockHeapOrdering(t *testing.T) {
	var h blockHeap
	seqs := []uint64{9, 2, 14, 1, 7, 3, 11, 5}
	for _, s := range seqs {
		h.push(pendingRef{seq: s, b: dfs.BlockID(s)})
	}
	if got := h.peek().seq; got != 1 {
		t.Fatalf("peek seq %d, want 1", got)
	}
	sorted := append([]uint64(nil), seqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		got := h.pop()
		if got.seq != want {
			t.Fatalf("pop %d: seq %d, want %d", i, got.seq, want)
		}
		if got.b != dfs.BlockID(want) {
			t.Fatalf("pop %d: block %d does not ride with its seq %d", i, got.b, want)
		}
	}
	if len(h) != 0 {
		t.Fatalf("%d entries left after draining", len(h))
	}
}

// TestBlockHeapInterleaved stress-tests push/pop interleaving (including
// duplicate seqs, which the rack index can produce past its dedup buffer)
// against a sorted-slice reference model.
func TestBlockHeapInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h blockHeap
	var model []uint64
	for step := 0; step < 5000; step++ {
		if len(model) == 0 || rng.Intn(3) != 0 {
			s := uint64(rng.Intn(100))
			h.push(pendingRef{seq: s})
			model = append(model, s)
			sort.Slice(model, func(i, j int) bool { return model[i] < model[j] })
		} else {
			got := h.pop()
			if got.seq != model[0] {
				t.Fatalf("step %d: pop seq %d, want %d", step, got.seq, model[0])
			}
			model = model[1:]
		}
	}
}
