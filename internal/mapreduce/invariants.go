package mapreduce

import (
	"fmt"

	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/topology"
)

// invariantChecker runs the full cross-layer invariant check after every
// node-lifecycle event, as a bus subscriber: the name node publishes
// NodeFail/NodeRecover at the end of its own mutation, so the checker
// judges exactly the state every earlier subscriber has finished reacting
// to. The first violation latches, aborts the run, and stops the engine.
// Disabled by default (SetInvariantChecks); it replaces the tracker's old
// checkAfterEvent calls, which each churn path had to remember to make.
//
// Note a deliberate cadence difference from the old inline calls: a rack
// failure now checks once per killed node (each FailNode publish) rather
// than once after the whole rack — strictly more checking, and output-
// invariant because a passing check has no observable effect.
type invariantChecker struct {
	t       *Tracker
	enabled bool
	err     error
}

// HandleEvent implements event.Subscriber.
func (c *invariantChecker) HandleEvent(ev event.Event) {
	switch ev.Kind {
	case event.NodeFail, event.NodeRecover, event.NodeDegrade, event.NodeRestore, event.ReplicaCorrupt,
		event.MasterRecover:
	default:
		return
	}
	if !c.enabled || c.err != nil {
		return
	}
	if err := c.t.CheckInvariants(); err != nil {
		c.err = fmt.Errorf("mapreduce: invariant violated at t=%g: %w", c.t.c.Eng.Now(), err)
		c.t.c.Eng.Stop()
	}
}

// SetInvariantChecks makes the tracker run the full metadata invariant
// checker after every node failure/recovery event; the first violation
// aborts the run with its error. Call before Run.
func (t *Tracker) SetInvariantChecks(v bool) { t.checker.enabled = v }

// CheckInvariants validates cross-layer consistency between the name node,
// the tracker's node view, and the per-job inverted locality indices. The
// churn harness runs it after every injected failure/recovery event; tests
// run it after whole simulations. It is O(cluster + pending·replicas·heap)
// and exists for correctness checking, not the hot path.
func (t *Tracker) CheckInvariants() error {
	// 1. Name-node metadata: mirror maps, byte accounting, replication
	// floor, no replicas on down nodes.
	if err := t.c.NN.CheckInvariants(); err != nil {
		return err
	}
	// 2. Tracker node state mirrors the name node's failure set, and slot
	// accounting stays within bounds.
	for _, node := range t.c.Nodes {
		if t.master.unobserved[node.ID] {
			// The node died or rejoined while the master was down: the
			// tracker saw it, the recovering master has not applied it yet.
			// The divergence is the modelled reality, not a bug.
			continue
		}
		if node.Up == t.c.NN.NodeFailed(node.ID) {
			return fmt.Errorf("mapreduce: node %d up=%v disagrees with name node failed=%v",
				node.ID, node.Up, t.c.NN.NodeFailed(node.ID))
		}
		if node.FreeMapSlots < 0 || node.FreeMapSlots > t.c.Profile.MapSlotsPerNode {
			return fmt.Errorf("mapreduce: node %d has %d free map slots (max %d)",
				node.ID, node.FreeMapSlots, t.c.Profile.MapSlotsPerNode)
		}
		if node.FreeReduceSlots < 0 || node.FreeReduceSlots > t.c.Profile.ReduceSlotsPerNode {
			return fmt.Errorf("mapreduce: node %d has %d free reduce slots (max %d)",
				node.ID, node.FreeReduceSlots, t.c.Profile.ReduceSlotsPerNode)
		}
		if node.Blacklisted && !node.Up {
			return fmt.Errorf("mapreduce: down node %d is blacklisted", node.ID)
		}
	}
	// 3. Every indexed job's locality heaps are consistent with the name
	// node: each (pending block, live replica) pair must have a live heap
	// entry under that node and its rack, or the indexed path could miss a
	// local launch the linear scan would find. (Stale entries are legal —
	// they are discarded lazily; missing entries are not.)
	for _, j := range t.active {
		if err := j.checkIndex(); err != nil {
			return err
		}
	}
	// 4. Task conservation: the tracker's in-flight attempt set, each job's
	// running counter, and the pending/completed accounting must agree — a
	// gray injection (flap kill, corrupt-read retry) that leaks or
	// double-counts a task shows up here.
	runningAttempts := make(map[*Job]int)
	liveGroups := make(map[*taskGroup]bool)
	for _, recs := range t.inflight {
		for r := range recs {
			if !r.isMap {
				continue
			}
			runningAttempts[r.job]++
			if !r.group.done {
				liveGroups[r.group] = true
			}
		}
	}
	groupsPerJob := make(map[*Job]int, len(liveGroups))
	for g := range liveGroups {
		groupsPerJob[g.job]++
	}
	for _, j := range t.active {
		if runningAttempts[j] != j.RunningMaps() {
			return fmt.Errorf("mapreduce: job %d: %d in-flight map attempts but runningMaps=%d",
				j.ID(), runningAttempts[j], j.RunningMaps())
		}
		if j.RunningMaps() < 0 || j.CompletedMaps() < 0 || j.PendingMaps() < 0 {
			return fmt.Errorf("mapreduce: job %d: negative task counter (running=%d completed=%d pending=%d)",
				j.ID(), j.RunningMaps(), j.CompletedMaps(), j.PendingMaps())
		}
		// Completed + pending + live groups can undershoot NumMaps (a
		// killed/failed task sits in backoff limbo, neither pending nor
		// running) but never overshoot: that would mean a map is both done
		// and queued, i.e. duplicated work.
		if total := j.CompletedMaps() + j.PendingMaps() + groupsPerJob[j]; total > j.Spec.NumMaps {
			return fmt.Errorf("mapreduce: job %d: completed %d + pending %d + running groups %d exceeds NumMaps %d",
				j.ID(), j.CompletedMaps(), j.PendingMaps(), groupsPerJob[j], j.Spec.NumMaps)
		}
	}
	return nil
}

// checkIndex verifies the job's inverted locality index covers every
// (pending block, current replica) pair.
func (j *Job) checkIndex() error {
	if j.linearScan {
		return nil
	}
	topo := j.cluster.Topo
	for b, seq := range j.pendingSeq {
		missing := topology.NodeID(-1)
		rackMiss := false
		j.cluster.NN.ForEachLocation(b, func(node topology.NodeID, _ dfs.ReplicaKind) bool {
			if !heapHas(*j.nodeHeap(node), b, seq) {
				missing = node
				return false
			}
			if !heapHas(*j.rackHeap(topo.Rack(node)), b, seq) {
				missing, rackMiss = node, true
				return false
			}
			return true
		})
		if missing >= 0 {
			where := "node heap"
			if rackMiss {
				where = "rack heap"
			}
			return fmt.Errorf("mapreduce: job %d: pending block %d replica on node %d missing from %s",
				j.ID(), b, missing, where)
		}
	}
	return nil
}

// heapHas reports whether h contains a live entry for (b, seq). Linear
// scan: the checker trades speed for independence from the heap's own
// ordering logic.
func heapHas(h blockHeap, b dfs.BlockID, seq uint64) bool {
	for _, e := range h {
		if e.b == b && e.seq == seq {
			return true
		}
	}
	return false
}
