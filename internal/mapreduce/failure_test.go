package mapreduce_test

import (
	"testing"

	"dare/internal/config"
	"dare/internal/mapreduce"
	"dare/internal/scheduler"
	"dare/internal/topology"
	"dare/internal/workload"
)

func failureFixture(t *testing.T, seed uint64, jobs int) (*mapreduce.Cluster, *mapreduce.Tracker) {
	t.Helper()
	p := config.CCT()
	p.Slaves = 10
	c, err := mapreduce.NewCluster(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.Generate(workload.GenConfig{NumJobs: jobs, NumFiles: 15, Seed: seed})
	tr, err := mapreduce.NewTracker(c, wl, scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	return c, tr
}

func TestNodeFailureJobsStillComplete(t *testing.T) {
	c, tr := failureFixture(t, 1, 60)
	tr.ScheduleNodeFailure(3, 5)
	tr.ScheduleNodeFailure(7, 9)
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 60 {
		t.Fatalf("results %d", len(results))
	}
	events := tr.FailureEvents()
	if len(events) != 2 {
		t.Fatalf("failure events %d", len(events))
	}
	if !c.NN.NodeFailed(3) || !c.NN.NodeFailed(7) {
		t.Fatal("name node missed the failures")
	}
	if c.Nodes[3].Up || c.Nodes[7].Up {
		t.Fatal("failed nodes still up")
	}
	if err := c.NN.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeFailureKillsAndRequeuesTasks(t *testing.T) {
	c, tr := failureFixture(t, 2, 80)
	// Fail mid-burst so in-flight tasks exist on the node.
	tr.ScheduleNodeFailure(0, 3)
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	ev := tr.FailureEvents()[0]
	if ev.KilledMaps == 0 {
		t.Skip("no in-flight maps on node 0 at t=3 for this seed")
	}
	// Every job still finished all its maps despite the kills.
	for _, r := range results {
		if r.Local+r.Rack+r.Remote != r.NumMaps {
			t.Fatalf("job %d lost tasks: %d+%d+%d != %d", r.ID, r.Local, r.Rack, r.Remote, r.NumMaps)
		}
	}
	_ = c
}

func TestRepairRestoresReplication(t *testing.T) {
	c, tr := failureFixture(t, 3, 60)
	tr.ScheduleNodeFailure(2, 4)
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.RepairsDone() == 0 {
		t.Fatal("no repairs performed")
	}
	// After repair, no block backed by live replicas should remain
	// under-replicated.
	if under := c.NN.UnderReplicated(); len(under) != 0 {
		t.Fatalf("%d blocks still under-replicated after the run", len(under))
	}
}

func TestDisableRepair(t *testing.T) {
	c, tr := failureFixture(t, 4, 40)
	tr.ScheduleNodeFailure(1, 4)
	tr.DisableRepair()
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.RepairsDone() != 0 {
		t.Fatal("repairs ran despite DisableRepair")
	}
	if len(c.NN.UnderReplicated()) == 0 {
		t.Fatal("expected lingering under-replication without repair")
	}
}

func TestFailedNodeReceivesNoNewReplicas(t *testing.T) {
	p := config.CCT()
	p.Slaves = 6
	c, err := mapreduce.NewCluster(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	c.NN.FailNode(2)
	f, err := c.NN.CreateFile("after", 20, p.BlockSizeBytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		if c.NN.HasReplica(b, topology.NodeID(2)) {
			t.Fatal("placement used a failed node")
		}
	}
	if err := c.NN.AddDynamicReplica(f.Blocks[0], 2); err == nil {
		t.Fatal("dynamic replica accepted on failed node")
	}
}

func TestFailureDeterministic(t *testing.T) {
	run := func() []mapreduce.FailureEvent {
		_, tr := failureFixture(t, 6, 50)
		tr.ScheduleNodeFailure(4, 6)
		if _, err := tr.Run(); err != nil {
			t.Fatal(err)
		}
		return tr.FailureEvents()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("event counts differ")
	}
	for i := range a {
		if a[i].Time != b[i].Time || a[i].KilledMaps != b[i].KilledMaps ||
			a[i].AvailableBlocks != b[i].AvailableBlocks ||
			len(a[i].Report.LostPrimaries) != len(b[i].Report.LostPrimaries) {
			t.Fatalf("failure event %d differs between identical runs", i)
		}
	}
}

func TestFailureInvalidNode(t *testing.T) {
	_, tr := failureFixture(t, 7, 10)
	tr.ScheduleNodeFailure(99, 1)
	if _, err := tr.Run(); err == nil {
		t.Fatal("invalid failure node accepted")
	}
}
