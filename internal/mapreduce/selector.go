package mapreduce

import (
	"dare/internal/dfs"
	"dare/internal/topology"
)

// TaskSelector is the pluggable scheduling policy (FIFO or Fair with delay
// scheduling; see internal/scheduler). The tracker offers it a node with a
// free slot at each heartbeat; the selector picks a job and removes the
// chosen block from that job's pending set.
type TaskSelector interface {
	// Name labels the scheduler in reports.
	Name() string
	// AddJob registers a newly arrived job.
	AddJob(j *Job)
	// RemoveJob deregisters a finished job.
	RemoveJob(j *Job)
	// SelectMapTask picks a map task for a free map slot on node, or
	// ok=false when nothing should launch there now.
	SelectMapTask(node topology.NodeID, now float64) (j *Job, b dfs.BlockID, ok bool)
	// SelectReduceTask picks a job to run a reduce task on node.
	SelectReduceTask(node topology.NodeID, now float64) (j *Job, ok bool)
}
