package mapreduce

import (
	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/topology"
)

// localityIndexMaintainer keeps every active job's inverted locality index
// in sync with the name node's replica map by subscribing to replica
// events on the cluster bus: additions (placement, DARE announce, repair,
// balancer moves) push heap entries; removals (eviction, node loss,
// balancer moves) drop them eagerly so a vanished replica is never offered
// as local again. It replaces the tracker's old single-slot replica
// hook, whose removal half was a silent no-op.
type localityIndexMaintainer struct {
	t *Tracker
}

// HandleEvent implements event.Subscriber. Jobs are updated independently
// (no publishes, no engine calls), so iteration order is immaterial to the
// outcome; the arrival-ordered slice just makes the sweep cheap.
func (m *localityIndexMaintainer) HandleEvent(ev event.Event) {
	switch ev.Kind {
	case event.ReplicaAdd, event.ReplicaRepair:
		b, node := dfs.BlockID(ev.Block), topology.NodeID(ev.Node)
		for _, j := range m.t.active {
			j.onReplicaAdded(b, node)
		}
	case event.ReplicaRemove:
		b, node := dfs.BlockID(ev.Block), topology.NodeID(ev.Node)
		for _, j := range m.t.active {
			j.onReplicaRemoved(b, node)
		}
	}
}
