package mapreduce_test

import (
	"testing"

	"dare/internal/config"
	"dare/internal/mapreduce"
	"dare/internal/scheduler"
	"dare/internal/stats"
	"dare/internal/topology"
	"dare/internal/workload"
)

// churnFixture builds a two-rack cluster (CCT hardware, racks of 5) so
// rack-correlated failures have both victims and survivors.
func churnFixture(t *testing.T, seed uint64, jobs int) (*mapreduce.Cluster, *mapreduce.Tracker) {
	t.Helper()
	p := config.CCT()
	p.Slaves = 10
	p.RackSize = 5
	c, err := mapreduce.NewCluster(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.Generate(workload.GenConfig{NumJobs: jobs, NumFiles: 15, Seed: seed})
	tr, err := mapreduce.NewTracker(c, wl, scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	return c, tr
}

func TestNodeRecoveryRestoresScheduling(t *testing.T) {
	c, tr := churnFixture(t, 11, 60)
	tr.ScheduleNodeFailure(3, 4)
	tr.ScheduleNodeRecovery(3, 12)
	tr.SetInvariantChecks(true)
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 60 {
		t.Fatalf("results %d", len(results))
	}
	if !c.Nodes[3].Up || c.NN.NodeFailed(3) {
		t.Fatal("node 3 did not rejoin")
	}
	recs := tr.RecoveryEvents()
	if len(recs) != 1 || recs[0].Node != 3 || recs[0].Time != 12 {
		t.Fatalf("recovery events %+v", recs)
	}
	// Slots returned to the scheduler at full capacity.
	if c.Nodes[3].FreeMapSlots > c.Profile.MapSlotsPerNode {
		t.Fatal("slot accounting broken after rejoin")
	}
	// Availability is monotone non-increasing across events: rejoin is
	// empty, so nothing lost ever comes back.
	evs := tr.FailureEvents()
	if len(evs) != 1 {
		t.Fatalf("failure events %d", len(evs))
	}
	if recs[0].WeightedAvailability > evs[0].WeightedAvailability {
		t.Fatalf("availability rose from %v to %v after empty rejoin",
			evs[0].WeightedAvailability, recs[0].WeightedAvailability)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryOfUpNodeIsNoOp(t *testing.T) {
	_, tr := churnFixture(t, 12, 20)
	tr.ScheduleNodeRecovery(2, 5) // node 2 never fails
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.RecoveryEvents()) != 0 {
		t.Fatal("no-op recovery recorded an event")
	}
}

func TestRackFailureKillsWholeRack(t *testing.T) {
	c, tr := churnFixture(t, 13, 60)
	tr.ScheduleRackFailure(0, 5)
	tr.SetInvariantChecks(true)
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 60 {
		t.Fatalf("results %d", len(results))
	}
	evs := tr.FailureEvents()
	if len(evs) != 5 {
		t.Fatalf("rack of 5 produced %d failure events", len(evs))
	}
	for _, ev := range evs {
		if ev.Rack != 0 || ev.Time != 5 {
			t.Fatalf("event %+v not tagged as rack-0 switch failure", ev)
		}
		if c.Topo.Rack(ev.Node) != 0 {
			t.Fatalf("node %d is not in rack 0", ev.Node)
		}
	}
	for i := 0; i < 5; i++ {
		if c.Nodes[i].Up {
			t.Fatalf("rack-0 node %d survived the switch failure", i)
		}
	}
	for i := 5; i < 10; i++ {
		if !c.Nodes[i].Up {
			t.Fatalf("rack-1 node %d died in a rack-0 failure", i)
		}
	}
}

func TestRackFailureThenRecoveryHeals(t *testing.T) {
	c, tr := churnFixture(t, 14, 60)
	tr.ScheduleRackFailure(1, 5)
	for n := 5; n < 10; n++ {
		tr.ScheduleNodeRecovery(topology.NodeID(n), 20+float64(n))
	}
	tr.SetInvariantChecks(true)
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	for n := 5; n < 10; n++ {
		if !c.Nodes[n].Up {
			t.Fatalf("node %d did not rejoin", n)
		}
	}
	if tr.RepairsDone() == 0 {
		t.Fatal("no repairs after a rack failure")
	}
	// With all nodes back and repair drained, every surviving block must be
	// back at full replication.
	if under := c.NN.UnderReplicated(); len(under) != 0 {
		t.Fatalf("%d blocks still under-replicated after heal", len(under))
	}
}

func TestInvalidRackRejected(t *testing.T) {
	_, tr := churnFixture(t, 15, 10)
	tr.ScheduleRackFailure(7, 1)
	if _, err := tr.Run(); err == nil {
		t.Fatal("invalid rack accepted")
	}
}

func TestTaskAttemptLimitFailsJob(t *testing.T) {
	_, tr := churnFixture(t, 16, 30)
	// Every attempt fails: each map input burns its 4 attempts and the job
	// fails — the run must still terminate with a result per job.
	tr.SetTaskFailureInjection(1.0, stats.NewRNG(99))
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 30 {
		t.Fatalf("results %d", len(results))
	}
	for _, r := range results {
		if !r.Failed {
			t.Fatalf("job %d completed despite 100%% task failure", r.ID)
		}
	}
}

func TestFlakyTasksRetryAndComplete(t *testing.T) {
	_, tr := churnFixture(t, 17, 40)
	// 20% attempt failure: retries with backoff should carry every job to
	// completion (the chance of 4 consecutive failures is 0.16% per task).
	tr.SetTaskFailureInjection(0.2, stats.NewRNG(7))
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, r := range results {
		if r.Failed {
			failed++
		}
	}
	if failed > len(results)/10 {
		t.Fatalf("%d/%d jobs failed at 20%% attempt-failure rate", failed, len(results))
	}
}

func TestBlacklistingAndRecoveryForgiveness(t *testing.T) {
	c, tr := churnFixture(t, 18, 60)
	tr.SetTaskFailureInjection(0.5, stats.NewRNG(5))
	tr.SetBlacklistAfter(2)
	// Rejoin two nodes late in the run: recovery must clear any verdict.
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Blacklisted() == 0 {
		t.Fatal("50% attempt failure never blacklisted a node")
	}
	usable := 0
	for _, n := range c.Nodes {
		if n.Up && !n.Blacklisted {
			usable++
		}
	}
	if usable < 1 {
		t.Fatal("blacklisting starved the scheduler of nodes")
	}
}

func TestRecoveryClearsBlacklist(t *testing.T) {
	c, tr := churnFixture(t, 19, 40)
	tr.ScheduleNodeFailure(4, 6)
	tr.ScheduleNodeRecovery(4, 14)
	// Pre-blacklist the node: the rejoin (re-registration) must forgive it.
	c.Nodes[4].Blacklisted = true
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Nodes[4].Blacklisted {
		t.Fatal("recovery did not clear the blacklist")
	}
}

func TestChurnDeterministic(t *testing.T) {
	run := func() ([]mapreduce.FailureEvent, []mapreduce.RecoveryEvent, int) {
		_, tr := churnFixture(t, 20, 50)
		tr.ScheduleNodeFailure(2, 4)
		tr.ScheduleRackFailure(1, 8)
		tr.ScheduleNodeRecovery(2, 15)
		tr.ScheduleNodeRecovery(6, 18)
		tr.SetTaskFailureInjection(0.1, stats.NewRNG(3))
		if _, err := tr.Run(); err != nil {
			t.Fatal(err)
		}
		return tr.FailureEvents(), tr.RecoveryEvents(), tr.RepairsDone()
	}
	f1, r1, d1 := run()
	f2, r2, d2 := run()
	if len(f1) != len(f2) || len(r1) != len(r2) || d1 != d2 {
		t.Fatalf("churn runs diverged: %d/%d events vs %d/%d, %d vs %d repairs",
			len(f1), len(r1), len(f2), len(r2), d1, d2)
	}
	for i := range f1 {
		if f1[i].Time != f2[i].Time {
			t.Fatalf("failure event %d time differs", i)
		}
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("recovery event %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}
