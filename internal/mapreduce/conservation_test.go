package mapreduce_test

import (
	"testing"
	"testing/quick"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/mapreduce"
	"dare/internal/scheduler"
	"dare/internal/stats"
	"dare/internal/workload"
)

// TestConservationProperty drives random small workloads end-to-end under
// random scheduler/policy combinations and checks the conservation laws
// that any correct execution must satisfy:
//
//   - every job completes exactly its spec'd number of map tasks;
//   - every node's slots return to their configured capacity;
//   - the DFS metadata stays internally consistent;
//   - results are complete and sorted.
func TestConservationProperty(t *testing.T) {
	f := func(seed uint64, schedPick, polPick uint8, jobsRaw uint8) bool {
		jobs := int(jobsRaw%40) + 10
		p := config.CCT()
		p.Slaves = 8
		c, err := mapreduce.NewCluster(p, seed)
		if err != nil {
			return false
		}
		wl := workload.Generate(workload.GenConfig{NumJobs: jobs, NumFiles: 12, Seed: seed})

		var sel mapreduce.TaskSelector
		if schedPick%2 == 0 {
			sel = scheduler.NewFIFO()
		} else {
			sel = scheduler.NewFair(0)
		}
		tr, err := mapreduce.NewTracker(c, wl, sel)
		if err != nil {
			return false
		}
		switch polPick % 3 {
		case 1:
			c.Bus.Subscribe(core.NewManager(core.DefaultConfig(), c.NN, stats.NewRNG(seed), c.Eng.Defer))
		case 2:
			cfg := core.Config{Kind: core.GreedyLRUPolicy, BudgetFraction: 0.05, AnnounceDelay: 0.25, LazyDeleteDelay: 0.25}
			c.Bus.Subscribe(core.NewManager(cfg, c.NN, stats.NewRNG(seed), c.Eng.Defer))
		}

		results, err := tr.Run()
		if err != nil {
			return false
		}
		if len(results) != jobs {
			return false
		}
		for i, r := range results {
			if r.ID != i {
				return false
			}
			if r.Local+r.Rack+r.Remote != r.NumMaps {
				return false
			}
			if r.NumMaps != wl.Jobs[i].NumMaps {
				return false
			}
			if r.Finish < r.Arrival || r.Turnaround <= 0 {
				return false
			}
		}
		for _, n := range c.Nodes {
			if n.FreeMapSlots != p.MapSlotsPerNode || n.FreeReduceSlots != p.ReduceSlotsPerNode {
				return false
			}
			if n.ActiveRemoteReads != 0 {
				return false
			}
		}
		return c.NN.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConservationWithFailuresProperty repeats the conservation checks
// with a mid-run node failure (downed node's slots are exempt).
func TestConservationWithFailuresProperty(t *testing.T) {
	f := func(seed uint64, victim uint8) bool {
		p := config.CCT()
		p.Slaves = 8
		c, err := mapreduce.NewCluster(p, seed)
		if err != nil {
			return false
		}
		wl := workload.Generate(workload.GenConfig{NumJobs: 30, NumFiles: 10, Seed: seed})
		tr, err := mapreduce.NewTracker(c, wl, scheduler.NewFIFO())
		if err != nil {
			return false
		}
		node := int(victim % 8)
		tr.ScheduleNodeFailure(c.Nodes[node].ID, 2)
		results, err := tr.Run()
		if err != nil {
			return false
		}
		if len(results) != 30 {
			return false
		}
		for _, r := range results {
			if r.Local+r.Rack+r.Remote != r.NumMaps {
				return false
			}
		}
		for i, n := range c.Nodes {
			if i == node {
				continue // failed node keeps whatever slot state it died with
			}
			if n.FreeMapSlots != p.MapSlotsPerNode || n.FreeReduceSlots != p.ReduceSlotsPerNode {
				return false
			}
		}
		return c.NN.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
