package mapreduce

import (
	"errors"
	"fmt"

	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/retry"
	"dare/internal/stats"
	"dare/internal/topology"
)

// Gray failures: the injuries real clusters suffer far more often than
// clean crashes — slow nodes, degraded disks, silently corrupted replicas,
// and nodes wrongly declared dead that rejoin moments later. Unlike the
// kill path (failure.go), a gray node keeps heartbeating and keeps its
// replicas, so the pressure lands on delay scheduling, the speculator, and
// the integrity-aware read path instead of on requeue/blacklist machinery.
//
// All injection is seeded and scheduled before Run; with nothing scheduled
// and gray reads disabled, every code path below is unreachable or
// multiplies by exactly 1.0, keeping healthy runs bit-identical.

// GrayStats tallies the gray-failure machinery's activity across one run.
type GrayStats struct {
	// Degrades and Restores count service/disk degradation episodes
	// starting and ending.
	Degrades, Restores int
	// Flaps counts false-dead declarations; ReplicasRestored counts the
	// stale replicas reconciled back into the registry on flap rejoins.
	Flaps            int
	ReplicasRestored int
	// CorruptionsInjected counts replicas silently corrupted;
	// CorruptionsDetected counts checksum failures caught on read (each
	// quarantines the replica and triggers repair).
	CorruptionsInjected, CorruptionsDetected int
	// ReadRetries counts reads that fell back to another replica after a
	// corrupt read; HedgedReads counts backup fetches launched for slow
	// remote reads, of which HedgeWins finished before the primary fetch.
	ReadRetries            int
	HedgedReads, HedgeWins int
}

// plannedDegrade, plannedRestore, plannedCorruption, and plannedFlap are
// gray injections registered before Run.
type plannedDegrade struct {
	node   topology.NodeID
	factor float64
	disk   bool
	at     float64
}

type plannedRestore struct {
	node topology.NodeID
	at   float64
}

type plannedCorruption struct {
	block dfs.BlockID     // < 0: draw a random block at fire time
	node  topology.NodeID // < 0: lowest-ID holder at fire time
	at    float64
}

type plannedFlap struct {
	node topology.NodeID
	at   float64
	down float64
}

// grayState bundles the tracker's gray-failure machinery: planned
// injections, the integrity-aware read path's knobs, and activity tallies.
type grayState struct {
	degrades    []plannedDegrade
	restores    []plannedRestore
	corruptions []plannedCorruption
	flaps       []plannedFlap

	// readsEnabled switches task launches to the integrity-aware read
	// path (checksum verification, retry with backoff, hedged reads).
	readsEnabled bool
	// hedgeTimeout is the remote-read duration beyond which a backup
	// fetch from the next-best source is launched (<= 0 disables hedging).
	hedgeTimeout float64
	// retryBase and retryCap bound the capped exponential backoff between
	// a corrupt-read detection and the retry on the next-best replica.
	retryBase, retryCap float64
	// rng draws random corruption victims (a dedicated seed stream).
	rng *stats.RNG

	stats GrayStats
}

// EnableGrayReads switches every map-task launch to the integrity-aware
// read path: reads verify the (modelled) checksum and a corrupt read
// quarantines the replica and retries on the next-best copy after a
// capped exponential backoff (retryBase doubling up to retryCap); remote
// reads slower than hedgeTimeout launch a hedged second fetch
// (hedgeTimeout <= 0 disables hedging). rng feeds random corruption
// injection (ScheduleRandomCorruption). Call before Run.
func (t *Tracker) EnableGrayReads(hedgeTimeout, retryBase, retryCap float64, rng *stats.RNG) {
	t.gray.readsEnabled = true
	t.gray.hedgeTimeout = hedgeTimeout
	t.gray.retryBase = retryBase
	t.gray.retryCap = retryCap
	t.gray.rng = rng
}

// ScheduleNodeDegrade registers node to go gray at simulated time `at`:
// disk=false multiplies its task service time by factor (straggler);
// disk=true divides its effective disk bandwidth by factor (dying disk).
// factor must be > 1. Call before Run.
func (t *Tracker) ScheduleNodeDegrade(node topology.NodeID, factor float64, disk bool, at float64) {
	t.gray.degrades = append(t.gray.degrades, plannedDegrade{node: node, factor: factor, disk: disk, at: at})
}

// ScheduleNodeRestore registers a degraded node to return to full speed at
// simulated time `at`. Restoring a healthy node is a no-op. Call before
// Run.
func (t *Tracker) ScheduleNodeRestore(node topology.NodeID, at float64) {
	t.gray.restores = append(t.gray.restores, plannedRestore{node: node, at: at})
}

// ScheduleBlockCorruption registers node's replica of b to silently
// corrupt at simulated time `at`; node < 0 picks the lowest-ID holder at
// fire time. The damage is latent until a gray read detects it. Call
// before Run.
func (t *Tracker) ScheduleBlockCorruption(b dfs.BlockID, node topology.NodeID, at float64) {
	t.gray.corruptions = append(t.gray.corruptions, plannedCorruption{block: b, node: node, at: at})
}

// ScheduleRandomCorruption registers one replica of a block drawn from the
// gray RNG (EnableGrayReads) to silently corrupt at simulated time `at`.
// The victim block is drawn at fire time so identical schedules hit
// identical blocks across policy arms. Call before Run.
func (t *Tracker) ScheduleRandomCorruption(at float64) {
	t.gray.corruptions = append(t.gray.corruptions, plannedCorruption{block: -1, node: -1, at: at})
}

// ScheduleNodeFlap registers a false-dead episode: at simulated time `at`
// the node is declared dead exactly as a crash (tasks die, metadata is
// scrubbed, repair is triggered), but after downFor seconds it
// re-registers with its disk intact and the registry reconciles its stale
// block report. Call before Run.
func (t *Tracker) ScheduleNodeFlap(node topology.NodeID, at, downFor float64) {
	t.gray.flaps = append(t.gray.flaps, plannedFlap{node: node, at: at, down: downFor})
}

// Gray returns the gray-failure activity tallies.
func (t *Tracker) Gray() GrayStats { return t.gray.stats }

// scheduleInjectedGray registers every planned gray injection with the
// engine. Run calls it once, next to scheduleInjectedChurn.
func (t *Tracker) scheduleInjectedGray() error {
	eng := t.c.Eng
	for _, pd := range t.gray.degrades {
		pd := pd
		if int(pd.node) < 0 || int(pd.node) >= len(t.c.Nodes) {
			return fmt.Errorf("mapreduce: degrade scheduled for invalid node %d", pd.node)
		}
		if pd.factor <= 1 {
			return fmt.Errorf("mapreduce: degrade factor %g for node %d must be > 1", pd.factor, pd.node)
		}
		eng.DeferAt(pd.at, func() { t.degradeNode(t.c.Nodes[pd.node], pd.factor, pd.disk) })
	}
	for _, pr := range t.gray.restores {
		pr := pr
		if int(pr.node) < 0 || int(pr.node) >= len(t.c.Nodes) {
			return fmt.Errorf("mapreduce: restore scheduled for invalid node %d", pr.node)
		}
		eng.DeferAt(pr.at, func() { t.restoreNode(t.c.Nodes[pr.node]) })
	}
	for _, pc := range t.gray.corruptions {
		pc := pc
		eng.DeferAt(pc.at, func() { t.corruptReplica(pc.block, pc.node) })
	}
	for _, pf := range t.gray.flaps {
		pf := pf
		if int(pf.node) < 0 || int(pf.node) >= len(t.c.Nodes) {
			return fmt.Errorf("mapreduce: flap scheduled for invalid node %d", pf.node)
		}
		if pf.down <= 0 {
			return fmt.Errorf("mapreduce: flap downtime %g for node %d must be > 0", pf.down, pf.node)
		}
		eng.DeferAt(pf.at, func() { t.flapNode(t.c.Nodes[pf.node], pf.down) })
	}
	return nil
}

// degradeNode starts one gray episode on a live node and publishes
// NodeDegrade (Aux: the multiplier in milli-units, Flag: disk).
func (t *Tracker) degradeNode(node *Node, factor float64, disk bool) {
	if !node.Up {
		return // died before the episode started
	}
	if disk {
		node.DiskFactor = factor
	} else {
		node.SlowFactor = factor
	}
	t.gray.stats.Degrades++
	ev := event.New(event.NodeDegrade)
	ev.Node = int32(node.ID)
	ev.Rack = int32(t.c.Topo.Rack(node.ID))
	ev.Aux = int64(factor * 1000)
	ev.Flag = disk
	t.bus.Publish(ev)
}

// restoreNode ends a node's gray episode(s) and publishes NodeRestore
// (Flag mirrors whether a disk degradation was among them). Restoring a
// healthy node is a no-op.
func (t *Tracker) restoreNode(node *Node) {
	if node.SlowFactor == 1 && node.DiskFactor == 1 {
		return
	}
	disk := node.DiskFactor != 1
	node.SlowFactor, node.DiskFactor = 1, 1
	t.gray.stats.Restores++
	ev := event.New(event.NodeRestore)
	ev.Node = int32(node.ID)
	ev.Rack = int32(t.c.Topo.Rack(node.ID))
	ev.Flag = disk
	t.bus.Publish(ev)
}

// corruptReplica executes one scheduled corruption: resolve the victim
// (random block / lowest-ID holder when unspecified) and mark it. No
// event fires — corruption is silent until a read detects it.
func (t *Tracker) corruptReplica(b dfs.BlockID, node topology.NodeID) {
	if b < 0 {
		if t.gray.rng == nil || t.c.NN.Blocks() == 0 {
			return
		}
		// Block IDs are dense (allocated sequentially from zero), so one
		// draw picks uniformly; the same schedule corrupts the same block
		// in every policy arm regardless of replica placement.
		b = dfs.BlockID(t.gray.rng.Intn(t.c.NN.Blocks()))
	}
	if node < 0 {
		best := topology.NodeID(-1)
		t.c.NN.ForEachLocation(b, func(n topology.NodeID, _ dfs.ReplicaKind) bool {
			if best < 0 || n < best {
				best = n
			}
			return true
		})
		if best < 0 {
			return // block currently unavailable: nothing to corrupt
		}
		node = best
	}
	if err := t.c.NN.MarkCorrupt(b, node); err != nil {
		return // replica vanished between scheduling and firing
	}
	t.gray.stats.CorruptionsInjected++
}

// flapNode executes one false-dead episode: the node dies exactly like a
// crash (heartbeat loss — tasks killed, metadata scrubbed, repair
// triggered), but the rejoin carries the pre-failure block report so the
// registry must reconcile stale replicas instead of starting empty.
func (t *Tracker) flapNode(node *Node, downFor float64) {
	if !node.Up {
		return
	}
	if t.master.down {
		// A flap IS a master decision — the false-dead declaration comes
		// from the master's heartbeat timeout. No master, no declaration:
		// the episode simply does not happen.
		return
	}
	t.killNode(node, -1)
	fe := &t.failureEvents[len(t.failureEvents)-1]
	fe.Flap = true
	t.gray.stats.Flaps++
	// Capture the block report now: what the node's disk still holds is
	// exactly what the failure scrubbed.
	rep := fe.Report
	stale := make([]dfs.StaleReplica, 0, len(rep.LostPrimaries)+len(rep.LostDynamic))
	for _, b := range rep.LostPrimaries {
		stale = append(stale, dfs.StaleReplica{Block: b, Kind: dfs.Primary})
	}
	for _, b := range rep.LostDynamic {
		stale = append(stale, dfs.StaleReplica{Block: b, Kind: dfs.Dynamic})
	}
	t.c.Eng.DeferTag(downFor, rejoinTag{node: node.ID, stale: stale},
		func() { t.rejoinWithReport(node, stale) })
	// The cluster believes the node is dead: repair rounds start. If the
	// flap window is shorter than the detection delay, the rejoin restores
	// the replicas first and the round finds nothing under-replicated.
	if !t.repairDisabled {
		t.scheduleRepairs()
	}
}

// rejoinWithReport executes a flap rejoin: slots and heartbeat return as
// in a crash recovery, but the name node reconciles the stale block
// report instead of re-registering empty.
func (t *Tracker) rejoinWithReport(node *Node, stale []dfs.StaleReplica) {
	if node.Up || !t.c.NN.NodeFailed(node.ID) {
		return // crashed and independently recovered during the flap window
	}
	node.Up = true
	node.FreeMapSlots = t.c.Profile.MapSlotsPerNode
	node.FreeReduceSlots = t.c.Profile.ReduceSlotsPerNode
	// The restarted process comes back healthy: gray episodes do not
	// survive a re-registration.
	node.SlowFactor, node.DiskFactor = 1, 1
	t.hb.Resume(node.ID)
	// Re-register last, as in recoverNode: subscribers of the restored
	// ReplicaAdd events and the final NodeRecover (Aux: restored count)
	// observe consistent tracker state.
	restored, err := t.c.NN.ReRegisterNode(node.ID, stale)
	if err != nil {
		return // unreachable: guarded above
	}
	t.gray.stats.ReplicasRestored += restored
	t.recoveryEvents = append(t.recoveryEvents, RecoveryEvent{
		Time:                 t.c.Eng.Now(),
		Node:                 node.ID,
		Restored:             restored,
		Backlog:              len(t.c.NN.UnderReplicated()),
		WeightedAvailability: t.c.NN.WeightedAvailability(t.blockWeights()),
	})
	if !t.repairDisabled {
		t.scheduleRepairs()
	}
}

// grayRead models the integrity-aware read path for one map attempt on
// node: choose the best source (local replica first), verify the checksum
// after reading, and on a corrupt read quarantine the replica (which
// evicts it and triggers repair), wait out a capped exponential backoff,
// and retry on the next-best copy. Remote reads slower than hedgeTimeout
// launch a backup fetch from the next-best source and the faster fetch
// wins. The return value is the total modelled read time; detection,
// retry, and hedge events are published at their offsets into that span.
func (t *Tracker) grayRead(j *Job, node *Node, b dfs.BlockID, size int64) float64 {
	g := &t.gray
	elapsed := 0.0
	var excluded map[topology.NodeID]bool
	for attempt := 0; ; attempt++ {
		src, local, dur := t.chooseGraySource(node, b, size, excluded)
		if src < 0 {
			// Every replica is gone or already found corrupt: model a
			// cold-storage restore at half disk speed, as the plain path
			// does when all replicas are lost.
			return elapsed + t.c.LocalReadTime(node.ID, size)*2
		}
		// Hedge a slow remote read: at the timeout, a backup fetch starts
		// from the next-best source; the faster of the two wins.
		if !local && g.hedgeTimeout > 0 && dur > g.hedgeTimeout {
			exc := make(map[topology.NodeID]bool, len(excluded)+1)
			for n := range excluded {
				exc[n] = true
			}
			exc[src] = true
			if hdur, hsrc, err := t.c.RemoteReadTimeExcluding(b, node.ID, size, exc); err == nil {
				hedged := g.hedgeTimeout + hdur
				won := hedged < dur
				g.stats.HedgedReads++
				hev := event.New(event.HedgedRead)
				hev.Job = int32(j.Spec.ID)
				hev.Block = int64(b)
				hev.Node = int32(node.ID)
				hev.Rack = int32(t.c.Topo.Rack(node.ID))
				hev.Aux = int64(hsrc)
				hev.Flag = won
				t.publishAt(elapsed+g.hedgeTimeout, hev)
				if won {
					g.stats.HedgeWins++
					src, dur = hsrc, hedged
				}
			}
		}
		if t.c.NN.IsCorrupt(b, src) {
			// The bad bytes are fully read before the checksum fails.
			elapsed += dur
			t.deferQuarantine(elapsed, b, src)
			if excluded == nil {
				excluded = make(map[topology.NodeID]bool, 2)
			}
			excluded[src] = true
			elapsed += retry.Backoff{Base: g.retryBase, Cap: g.retryCap}.Delay(attempt)
			g.stats.ReadRetries++
			rev := event.New(event.ReadRetry)
			rev.Job = int32(j.Spec.ID)
			rev.Block = int64(b)
			rev.Node = int32(node.ID)
			rev.Rack = int32(t.c.Topo.Rack(node.ID))
			rev.Aux = int64(attempt + 1)
			t.publishAt(elapsed, rev)
			continue
		}
		if !local {
			t.trackRemoteRead(node, elapsed, dur)
		}
		return elapsed + dur
	}
}

// chooseGraySource picks the read source for the gray path: the reader's
// own replica when present (and not excluded by an earlier corrupt read),
// otherwise the best remote source outside the excluded set. src < 0 means
// no source remains. Corrupt replicas are NOT skipped — the reader cannot
// know until the checksum fails.
func (t *Tracker) chooseGraySource(node *Node, b dfs.BlockID, size int64, excluded map[topology.NodeID]bool) (src topology.NodeID, local bool, dur float64) {
	if !excluded[node.ID] && t.c.NN.HasReplica(b, node.ID) {
		return node.ID, true, t.c.LocalReadTime(node.ID, size)
	}
	rdur, rsrc, err := t.c.RemoteReadTimeExcluding(b, node.ID, size, excluded)
	if err != nil {
		return -1, false, 0
	}
	return rsrc, false, rdur
}

// deferQuarantine schedules the checksum-failure handling at its offset
// into the read: quarantine the replica (evicting it and updating every
// locality index via the usual events) and trigger a repair round. A
// concurrent reader may have already quarantined it; re-check at fire
// time.
func (t *Tracker) deferQuarantine(offset float64, b dfs.BlockID, src topology.NodeID) {
	t.c.Eng.DeferTag(offset, quarantineTag{b: b, src: src},
		func() { t.quarantineNow(b, src, 0) })
}

// quarantineNow performs the checksum-failure report. When the master is
// down the reader holds its verdict and re-reports with capped exponential
// backoff (outageRetry counts consecutive retries); any other error means
// the replica vanished meanwhile (failure, eviction) and the report drops.
func (t *Tracker) quarantineNow(b dfs.BlockID, src topology.NodeID, outageRetry int) {
	if !t.c.NN.IsCorrupt(b, src) {
		return // already quarantined by an earlier reader
	}
	if err := t.c.NN.QuarantineReplica(b, src); err != nil {
		if errors.Is(err, dfs.ErrMasterDown) {
			if outageRetry == 0 {
				// Count the held verdict once, not once per retry tick.
				t.master.outageReads++
				t.master.stats.DeferredReads++
			}
			t.c.Eng.DeferTag(t.masterRetryDelay(outageRetry),
				quarantineTag{b: b, src: src, retry: outageRetry + 1},
				func() { t.quarantineNow(b, src, outageRetry+1) })
		}
		return
	}
	t.gray.stats.CorruptionsDetected++
	if !t.repairDisabled {
		t.scheduleRepairs()
	}
}

// trackRemoteRead accounts one winning remote fetch against the
// destination NIC for the [start, start+dur] window of the read span.
func (t *Tracker) trackRemoteRead(node *Node, start, dur float64) {
	begin := t.beginRemoteRead(node, dur)
	if start <= 0 {
		begin()
		return
	}
	t.c.Eng.DeferTag(start, readBeginTag{node: node.ID, dur: dur}, begin)
}

// beginRemoteRead returns the closure that opens a dur-long NIC
// accounting window on node (shared by trackRemoteRead and tag decode).
func (t *Tracker) beginRemoteRead(node *Node, dur float64) func() {
	return func() {
		node.ActiveRemoteReads++
		t.c.Eng.DeferTag(dur, readReleaseTag{node: node.ID},
			func() { node.ActiveRemoteReads-- })
	}
}

// publishAt publishes ev now (offset <= 0) or at the given offset into
// the future, stamped with the then-current simulation time.
func (t *Tracker) publishAt(offset float64, ev event.Event) {
	if offset <= 0 {
		t.bus.Publish(ev)
		return
	}
	t.c.Eng.DeferTag(offset, grayPublishTag{ev: ev}, func() { t.bus.Publish(ev) })
}
