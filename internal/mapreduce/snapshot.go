package mapreduce

import (
	"sort"

	"dare/internal/dfs"
	"dare/internal/policy"
	"dare/internal/snapshot"
)

// StateAdder is implemented by task selectors (and other pluggable
// components) that can fold their mutable state into a checkpoint
// fingerprint. Selectors that do not implement it contribute only a tag —
// a resumed run using such a selector still verifies through every other
// table row.
type StateAdder interface {
	AddState(h *snapshot.Hash)
}

// addJobState folds one job's complete scheduling state: the pending set
// (with enqueue seqs — requeue order is policy-visible), phase counters,
// locality tallies, attempt blame, and terminal flags. The inverted
// locality index (shards/heaps) is derived from pendingSeq plus the
// replica registry and is rebuilt by replay, so it is excluded.
func addJobState(h *snapshot.Hash, j *Job) {
	h.Int(j.Spec.ID)
	h.U64(j.nextSeq)
	blocks := make([]dfs.BlockID, 0, len(j.pendingSeq))
	for b := range j.pendingSeq {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, k int) bool { return blocks[i] < blocks[k] })
	h.Int(len(blocks))
	for _, b := range blocks {
		h.I64(int64(b))
		h.U64(j.pendingSeq[b])
	}
	h.Int(j.runningMaps)
	h.Int(j.completedMaps)
	h.Int(j.localMaps)
	h.Int(j.rackMaps)
	h.Int(j.remoteMaps)
	h.F64(j.mapTimeSum)
	h.I64(j.remoteBytes)
	h.I64(j.outputBytes)
	h.F64(j.firstTaskTime)
	h.Int(j.pendingReduces)
	h.Int(j.runningReduces)
	h.Int(j.finishedReduces)
	blocks = blocks[:0]
	for b := range j.attempts {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, k int) bool { return blocks[i] < blocks[k] })
	h.Int(len(blocks))
	for _, b := range blocks {
		h.I64(int64(b))
		h.Int(j.attempts[b])
	}
	h.Bool(j.finished)
	h.Bool(j.failed)
	h.F64(j.finishTime)
}

// addResult folds one finished job's result record.
func addResult(h *snapshot.Hash, r Result) {
	h.Int(r.ID)
	h.F64(r.Arrival)
	h.F64(r.Finish)
	h.Int(r.NumMaps)
	h.Int(r.NumRed)
	h.Int(r.Local)
	h.Int(r.Rack)
	h.Int(r.Remote)
	h.Int(r.FileRank)
	h.F64(r.MapTimeSum)
	h.I64(r.RemoteBytes)
	h.I64(r.OutputBytes)
	h.Int(r.OutputBlocks)
	h.F64(r.Turnaround)
	h.F64(r.FirstLaunch)
	h.F64(r.Dedicated)
	h.Bool(r.Failed)
}

// AddState folds the tracker's complete run state into t: per-node slot
// occupancy and health factors, every active job, collected results, the
// scheduler, in-flight attempts, repair/churn/gray/master machinery, and
// every RNG stream position the compute layer owns.
func (t *Tracker) AddState(tab *snapshot.StateTable) {
	nh := snapshot.NewHash()
	for _, n := range t.c.Nodes {
		nh.Int(n.FreeMapSlots)
		nh.Int(n.FreeReduceSlots)
		nh.Int(n.ActiveRemoteReads)
		nh.F64(n.SlowFactor)
		nh.F64(n.DiskFactor)
		nh.Bool(n.Up)
		nh.Bool(n.Blacklisted)
	}
	tab.Add("mr.nodes", nh.Sum())

	jh := snapshot.NewHash()
	jh.Int(len(t.active))
	for _, j := range t.active {
		addJobState(jh, j)
	}
	tab.Add("mr.jobs", jh.Sum())

	rh := snapshot.NewHash()
	rh.Int(t.completed)
	rh.Int(t.totalJobs)
	for _, r := range t.results {
		addResult(rh, r)
	}
	tab.Add("mr.results", rh.Sum())

	sh := snapshot.NewHash()
	if sa, ok := t.sel.(StateAdder); ok {
		sh.Str(t.sel.Name())
		sa.AddState(sh)
	} else {
		sh.Str("opaque:" + t.sel.Name())
	}
	tab.Add("mr.scheduler", sh.Sum())

	// In-flight attempts have no stable identity, so each record folds to
	// its own digest and the digests sum commutatively — order-insensitive
	// but still sensitive to any record changing.
	ih := snapshot.NewHash()
	var inflightSum uint64
	inflightCount := 0
	for node, recs := range t.inflight {
		for rec := range recs {
			one := snapshot.NewHash()
			one.Int(int(node.ID))
			one.Int(rec.job.Spec.ID)
			one.I64(int64(rec.block))
			one.Bool(rec.isMap)
			one.Int(int(rec.loc))
			one.F64(rec.dur)
			inflightSum += one.Sum()
			inflightCount++
		}
	}
	ih.Int(inflightCount)
	ih.U64(inflightSum)
	tab.Add("mr.inflight", ih.Sum())

	fh := snapshot.NewHash()
	fh.Int(t.repairsDone)
	fh.F64(t.lastRepairAt)
	fh.Bool(t.repairDisabled)
	blocks := make([]dfs.BlockID, 0, len(t.repairInFlight))
	for b := range t.repairInFlight {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, k int) bool { return blocks[i] < blocks[k] })
	for _, b := range blocks {
		fh.I64(int64(b))
	}
	fh.Int(len(t.failureEvents))
	fh.Int(len(t.recoveryEvents))
	for _, rule := range t.faults.blacklistRules {
		if rule != nil {
			policy.AddRuleState(fh, rule)
		}
	}
	if t.faults.failRule != nil {
		policy.AddRuleState(fh, t.faults.failRule)
	}
	for _, c := range t.faults.nodeTaskFailures {
		fh.Int(c)
	}
	if t.faults.taskFailG != nil {
		fh.U64(t.faults.taskFailG.Draws())
	}
	if t.faults.blacklistRNG != nil {
		fh.U64(t.faults.blacklistRNG.Draws())
	}
	tab.Add("mr.faults", fh.Sum())

	sp := snapshot.NewHash()
	sp.Int(t.spec.launched)
	sp.Int(len(t.spec.groups))
	for _, g := range t.spec.groups {
		sp.Int(g.job.Spec.ID)
		sp.I64(int64(g.block))
		sp.F64(g.started)
		sp.Bool(g.done)
		sp.Int(len(g.recs))
	}
	if t.spec.qualify != nil {
		policy.AddRuleState(sp, t.spec.qualify)
	}
	tab.Add("mr.speculator", sp.Sum())

	gh := snapshot.NewHash()
	gs := t.gray.stats
	gh.Int(gs.Degrades)
	gh.Int(gs.Restores)
	gh.Int(gs.Flaps)
	gh.Int(gs.ReplicasRestored)
	gh.Int(gs.CorruptionsInjected)
	gh.Int(gs.CorruptionsDetected)
	gh.Int(gs.ReadRetries)
	gh.Int(gs.HedgedReads)
	gh.Int(gs.HedgeWins)
	if t.gray.rng != nil {
		gh.U64(t.gray.rng.Draws())
	}
	tab.Add("mr.gray", gh.Sum())

	mh := snapshot.NewHash()
	mh.Bool(t.master.enabled)
	mh.Bool(t.master.down)
	mh.F64(t.master.downSince)
	mh.F64(t.master.recoverAt)
	mh.Int(len(t.master.pending))
	for _, pe := range t.master.pending {
		mh.Int(int(pe.node))
		mh.Bool(pe.recover)
	}
	mh.Int(len(t.master.unobserved))
	mh.I64(t.master.outageHeartbeats)
	mh.I64(t.master.outageReads)
	mh.Int(t.master.stats.Outages)
	mh.F64(t.master.stats.Downtime)
	mh.I64(t.master.stats.DeferredHeartbeats)
	mh.I64(t.master.stats.DeferredReads)
	mh.Int(t.master.stats.KilledMaps)
	mh.Int(t.master.stats.KilledReduces)
	mh.Int(t.master.stats.BlockReports)
	mh.F64(t.master.stats.WarmupTime)
	mh.Int(len(t.master.events))
	if tj := t.master.journal; tj != nil {
		ids := make([]int32, 0, len(tj.jobs))
		for id := range tj.jobs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
		for _, id := range ids {
			jj := tj.jobs[id]
			mh.Int(int(id))
			mh.Int(jj.numMaps)
			mh.Int(jj.completed)
			mh.Bool(jj.finished)
			mh.Bool(jj.failed)
		}
		for _, b := range tj.blame {
			mh.Int(b)
		}
		mh.Int(tj.finished)
	}
	tab.Add("mr.master", mh.Sum())

	hh := snapshot.NewHash()
	if t.hb != nil {
		if t.hb.ct != nil {
			t.hb.ct.AddState(hh)
		}
		for _, tk := range t.hb.tickers {
			if tk != nil {
				tk.AddState(hh)
			}
		}
	}
	tab.Add("mr.heartbeats", hh.Sum())

	tab.Add("mr.rng.rtt", t.c.rttG.Draws())
	tab.Add("mr.rng.noise", t.c.noiseG.Draws())
}
