package mapreduce_test

import (
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/mapreduce"
	"dare/internal/scheduler"
	"dare/internal/stats"
	"dare/internal/workload"
)

func smallWorkload(seed uint64, jobs int) *workload.Workload {
	return workload.Generate(workload.GenConfig{
		Name:             "test",
		NumJobs:          jobs,
		NumFiles:         20,
		MeanInterarrival: 3,
		Seed:             seed,
	})
}

func runOnce(t *testing.T, sel mapreduce.TaskSelector, seed uint64, jobs int) ([]mapreduce.Result, *mapreduce.Cluster) {
	t.Helper()
	p := config.CCT()
	p.Slaves = 8
	c, err := mapreduce.NewCluster(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	wl := smallWorkload(seed, jobs)
	tr, err := mapreduce.NewTracker(c, wl, sel)
	if err != nil {
		t.Fatal(err)
	}
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return results, c
}

func TestTrackerCompletesAllJobsFIFO(t *testing.T) {
	results, c := runOnce(t, scheduler.NewFIFO(), 1, 40)
	if len(results) != 40 {
		t.Fatalf("results %d", len(results))
	}
	for i, r := range results {
		if r.ID != i {
			t.Fatalf("results not sorted by ID at %d", i)
		}
		if r.Finish < r.Arrival {
			t.Fatalf("job %d finished before arrival", r.ID)
		}
		if r.Local+r.Rack+r.Remote != r.NumMaps {
			t.Fatalf("job %d task accounting off: %d+%d+%d != %d", r.ID, r.Local, r.Rack, r.Remote, r.NumMaps)
		}
		if l := r.Locality(); l < 0 || l > 1 {
			t.Fatalf("job %d locality %v", r.ID, l)
		}
		if r.Turnaround <= 0 || r.Dedicated <= 0 {
			t.Fatalf("job %d timings %v/%v", r.ID, r.Turnaround, r.Dedicated)
		}
	}
	if err := c.NN.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerCompletesAllJobsFair(t *testing.T) {
	results, c := runOnce(t, scheduler.NewFair(5), 2, 40)
	if len(results) != 40 {
		t.Fatalf("results %d", len(results))
	}
	if err := c.NN.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerDeterministic(t *testing.T) {
	a, _ := runOnce(t, scheduler.NewFIFO(), 3, 30)
	b, _ := runOnce(t, scheduler.NewFIFO(), 3, 30)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs between identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestTrackerWithDAREHookReplicates(t *testing.T) {
	p := config.CCT()
	p.Slaves = 8
	c, err := mapreduce.NewCluster(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	wl := smallWorkload(4, 60)
	tr, err := mapreduce.NewTracker(c, wl, scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	// The manager derives its budget from the bytes NewTracker just
	// loaded, so it is built second and subscribed to the cluster bus.
	mgr := core.NewManager(core.DefaultConfig(), c.NN, stats.NewRNG(5), c.Eng.Defer)
	c.Bus.Subscribe(mgr)
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 60 {
		t.Fatalf("results %d", len(results))
	}
	if mgr.TotalStats().ReplicasCreated == 0 {
		t.Fatal("DARE created no replicas under a skewed workload")
	}
	if len(mgr.Errors()) != 0 {
		t.Fatalf("manager errors: %v", mgr.Errors())
	}
	if err := c.NN.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerRejectsInvalidWorkload(t *testing.T) {
	p := config.CCT()
	p.Slaves = 4
	c, _ := mapreduce.NewCluster(p, 6)
	wl := smallWorkload(6, 5)
	wl.Jobs[0].NumMaps = 10000 // exceeds file
	if _, err := mapreduce.NewTracker(c, wl, scheduler.NewFIFO()); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestTrackerSlowdownAtLeastNearOne(t *testing.T) {
	// Slowdown is turnaround over ideal dedicated time; it can dip a bit
	// below 1 because the ideal includes conservative overheads, but it
	// must never be dramatically below.
	results, _ := runOnce(t, scheduler.NewFIFO(), 7, 30)
	for _, r := range results {
		if s := r.Slowdown(); s < 0.3 {
			t.Fatalf("job %d slowdown %v is implausible", r.ID, s)
		}
	}
}

func TestTrackerMapTimeSumPositive(t *testing.T) {
	results, _ := runOnce(t, scheduler.NewFair(5), 8, 20)
	for _, r := range results {
		if r.MapTimeSum <= 0 {
			t.Fatalf("job %d map time sum %v", r.ID, r.MapTimeSum)
		}
	}
}
