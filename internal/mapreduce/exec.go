package mapreduce

import (
	"math"

	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/sim"
	"dare/internal/topology"
)

// Task execution: attempt launch, completion, and the cost model glue.
// Each launch/complete/fail transition is published on the cluster bus;
// the reactive halves of the old god object (speculation, retry/backoff,
// replication policies) subscribe there instead of being called here.

// classify determines the locality level of running block b on node.
func (t *Tracker) classify(b dfs.BlockID, node topology.NodeID) Locality {
	if t.c.NN.HasReplica(b, node) {
		return NodeLocal
	}
	rack := t.c.Topo.Rack(node)
	inRack := false
	t.c.NN.ForEachLocation(b, func(loc topology.NodeID, _ dfs.ReplicaKind) bool {
		if t.c.Topo.Rack(loc) == rack {
			inRack = true
			return false
		}
		return true
	})
	if inRack {
		return RackLocal
	}
	return Remote
}

// launchMap starts the first attempt of a new map task (attempt group).
func (t *Tracker) launchMap(node *Node, j *Job, b dfs.BlockID) {
	g := &taskGroup{job: j, block: b, started: t.c.Eng.Now(), recs: make(map[*taskRec]bool, 1)}
	t.spec.observe(g)
	t.launchAttempt(node, g)
}

// launchAttempt starts one attempt (original or speculative backup) of the
// group's map task on node.
func (t *Tracker) launchAttempt(node *Node, g *taskGroup) {
	j := g.job
	b := g.block
	blk := t.c.NN.Block(b)
	loc := t.classify(b, node.ID)
	local := loc == NodeLocal

	// "if a map task is scheduled" (Algorithms 1 and 2): the TaskLaunch
	// event fires before read-time modelling — speculative attempts are
	// scheduled map tasks too. A subscribed DARE manager may announce or
	// evict replicas during this publish, exactly as the old direct hook
	// call allowed.
	ev := event.New(event.TaskLaunch)
	ev.Job = int32(j.Spec.ID)
	ev.Block = int64(b)
	ev.Node = int32(node.ID)
	ev.Rack = int32(t.c.Topo.Rack(node.ID))
	ev.File = int32(blk.File)
	ev.Aux = blk.Size
	ev.Flag = local
	t.bus.Publish(ev)

	var read float64
	if t.gray.readsEnabled {
		// Integrity-aware path: checksum verification, retry on corrupt
		// replicas, hedged slow remote reads. NIC accounting happens inside.
		read = t.grayRead(j, node, b, blk.Size)
	} else if local {
		read = t.c.LocalReadTime(node.ID, blk.Size)
	} else {
		var err error
		read, _, err = t.c.RemoteReadTime(b, node.ID, blk.Size)
		if err != nil {
			// No replica reachable (e.g. all replicas lost to failures):
			// model a cold-storage restore at half disk speed so the run
			// degrades instead of hanging.
			read = t.c.LocalReadTime(node.ID, blk.Size) * 2
		} else {
			node.ActiveRemoteReads++
			t.c.Eng.DeferTag(read, readReleaseTag{node: node.ID},
				func() { node.ActiveRemoteReads-- })
		}
	}
	// SlowFactor stretches the whole attempt on a gray-degraded node
	// (exactly 1.0 on healthy nodes, so the multiplication is bit-exact).
	dur := (math.Max(read, j.Spec.CPUPerTask) + t.c.Profile.TaskOverhead) * t.c.taskNoise() * node.SlowFactor

	if !local {
		j.remoteBytes += blk.Size
	}
	node.FreeMapSlots--
	j.runningMaps++
	if j.firstTaskTime < 0 {
		j.firstTaskTime = t.c.Eng.Now()
	}
	rec := &taskRec{job: j, block: b, isMap: true, group: g, node: node, loc: loc, dur: dur}
	g.recs[rec] = true
	// Owned: the tracker serializes in-flight attempts itself (state.go).
	rec.ev = t.c.Eng.ScheduleTag(dur, sim.Owned, func() { t.completeAttempt(rec) })
	t.track(node, rec)
}

// completeAttempt finishes the winning attempt of a map-task group. Any
// sibling backup still running is killed by the speculator; an injected
// task failure is published for the failure handler to blame and requeue.
func (t *Tracker) completeAttempt(rec *taskRec) {
	g := rec.group
	t.untrack(rec.node, rec)
	delete(g.recs, rec)
	rec.node.FreeMapSlots++
	g.job.runningMaps--
	if g.done {
		return
	}
	// Injected task failure (flaky disk/JVM): the attempt's work is
	// discarded. Flag=true blames the node; Aux=1 asks for a requeue
	// because no sibling attempt survives elsewhere.
	if t.faults.injectedFailure() {
		fe := event.New(event.TaskFail)
		fe.Job = int32(g.job.Spec.ID)
		fe.Block = int64(g.block)
		fe.Node = int32(rec.node.ID)
		fe.Rack = int32(t.c.Topo.Rack(rec.node.ID))
		fe.Flag = true
		if len(g.recs) == 0 {
			fe.Aux = 1
		}
		t.bus.Publish(fe)
		return
	}
	g.done = true
	raced := len(g.recs) > 0
	t.spec.killSiblings(g)
	ev := event.New(event.TaskComplete)
	ev.Job = int32(g.job.Spec.ID)
	ev.Block = int64(g.block)
	ev.Node = int32(rec.node.ID)
	ev.Rack = int32(t.c.Topo.Rack(rec.node.ID))
	ev.Aux = int64(rec.loc)
	ev.Flag = raced
	t.bus.Publish(ev)
	t.finishMap(g.job, rec.loc, rec.dur)
}

// track and untrack maintain the in-flight task set used by failure
// injection.
func (t *Tracker) track(node *Node, rec *taskRec) {
	set := t.inflight[node]
	if set == nil {
		set = make(map[*taskRec]bool)
		t.inflight[node] = set
	}
	set[rec] = true
}

func (t *Tracker) untrack(node *Node, rec *taskRec) {
	if set := t.inflight[node]; set != nil {
		delete(set, rec)
	}
}

func (t *Tracker) finishMap(j *Job, loc Locality, dur float64) {
	j.completedMaps++
	j.mapTimeSum += dur
	switch loc {
	case NodeLocal:
		j.localMaps++
	case RackLocal:
		j.rackMaps++
	default:
		j.remoteMaps++
	}
	if j.MapsDone() && j.Spec.NumReduces == 0 {
		t.finishJob(j)
	}
}

func (t *Tracker) launchReduce(node *Node, j *Job) {
	ev := event.New(event.TaskLaunch)
	ev.Job = int32(j.Spec.ID)
	ev.Node = int32(node.ID)
	ev.Rack = int32(t.c.Topo.Rack(node.ID))
	t.bus.Publish(ev) // Block stays -1: reduces have no input block
	node.FreeReduceSlots--
	j.pendingReduces--
	j.runningReduces++
	write := t.c.OutputWriteTime(node.ID, j.outputBlocksPerReduce())
	dur := (j.Spec.ReduceTime + write + t.c.Profile.TaskOverhead) * t.c.taskNoise() * node.SlowFactor
	j.outputBytes += j.outputNetworkBytesPerReduce(t.c.Profile)
	rec := &taskRec{job: j, isMap: false}
	// Owned: the tracker serializes in-flight attempts itself (state.go).
	rec.ev = t.c.Eng.ScheduleTag(dur, sim.Owned, func() {
		t.untrack(node, rec)
		t.finishReduce(node, j)
	})
	t.track(node, rec)
}

func (t *Tracker) finishReduce(node *Node, j *Job) {
	node.FreeReduceSlots++
	j.runningReduces--
	j.finishedReduces++
	ev := event.New(event.TaskComplete)
	ev.Job = int32(j.Spec.ID)
	ev.Node = int32(node.ID)
	ev.Rack = int32(t.c.Topo.Rack(node.ID))
	t.bus.Publish(ev) // Block stays -1: a reduce completion
	if j.MapsDone() && j.finishedReduces == j.Spec.NumReduces {
		t.finishJob(j)
	}
}
