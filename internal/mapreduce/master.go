package mapreduce

import (
	"fmt"
	"sort"

	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/retry"
	"dare/internal/topology"
)

// Master crash/failover: the control plane (job tracker + name node) can
// die mid-run and come back. While it is down the cluster keeps its
// data-plane physics — nodes crash, disks degrade, replicas rot — but
// nothing that needs the master happens: heartbeats go unanswered, no
// tasks launch, no metadata mutates, and DARE announces/evicts fail fast.
// On recovery the name node rebuilds its registry from the metadata
// journal (or progressively from block reports; see dfs/journal.go), the
// job tracker reconstructs its job ledger from the journaled event stream
// and requeues every attempt that was in flight at the crash (Hadoop
// JobTracker-restart semantics: running attempts are presumed lost), and
// node deaths/rejoins that happened during the outage are applied in
// order through the normal declaration paths.
//
// All of it is inert by default: without EnableMasterRecovery no journal
// exists, no subscriber is added, and every hook below is one predictable
// branch — committed goldens stay byte-identical.

// plannedOutage is one master crash/recover pair registered before Run.
type plannedOutage struct {
	at   float64
	down float64
	mode dfs.RecoveryMode
}

// pendingNodeEvent is a node lifecycle transition that happened while the
// master was down and awaits application at recovery, in arrival order.
type pendingNodeEvent struct {
	node    topology.NodeID
	recover bool
}

// MasterEventKind tags MasterEvent samples.
type MasterEventKind string

const (
	// MasterWentDown samples the instant of a crash.
	MasterWentDown MasterEventKind = "crash"
	// MasterCameBack samples the instant of a recovery.
	MasterCameBack MasterEventKind = "recover"
	// MasterGotReport samples one block report landing on a warming master.
	MasterGotReport MasterEventKind = "report"
)

// MasterEvent is one availability sample on the control-plane timeline:
// the access-weighted availability of the master's block view at a crash,
// recovery, or block-report instant. The failover experiment integrates
// these (availability is zero while down) into access-weighted uptime.
type MasterEvent struct {
	Time float64
	Kind MasterEventKind
	// WeightedAvailability is the master's view right after the event —
	// zero knowledge right after a report-mode recovery, climbing with
	// each report.
	WeightedAvailability float64
}

// MasterStats tallies the control-plane outage machinery across one run.
type MasterStats struct {
	// Outages counts crashes; Downtime sums crash→recover spans.
	Outages  int
	Downtime float64
	// DeferredHeartbeats counts heartbeats that went unanswered during
	// outages; DeferredReads counts map reads killed by crashes plus
	// corrupt-read quarantines that had to wait for the master.
	DeferredHeartbeats int64
	DeferredReads      int64
	// KilledMaps and KilledReduces count in-flight attempts lost to
	// crashes (and requeued through the attempt-limit machinery).
	KilledMaps, KilledReduces int
	// BlockReports counts per-node reports delivered to warming masters;
	// WarmupTime sums recover→fully-warm spans (report mode only).
	BlockReports int
	WarmupTime   float64
	// JournalCheckpoints and JournalRecords snapshot the metadata journal
	// at read time.
	JournalCheckpoints int
	JournalRecords     int
}

// masterState bundles the tracker's control-plane failover machinery.
type masterState struct {
	enabled bool
	down    bool
	mode    dfs.RecoveryMode
	outages []plannedOutage
	journal *trackerJournal
	// pending queues node deaths/rejoins declared while down, in arrival
	// order; unobserved marks nodes whose tracker state diverged from the
	// master's frozen view (invariant check 2 relaxes for them).
	pending    []pendingNodeEvent
	unobserved map[topology.NodeID]bool
	downSince  float64
	recoverAt  float64
	// Per-outage counters, published on MasterRecover and folded into
	// stats.
	outageHeartbeats int64
	outageReads      int64
	stats            MasterStats
	events           []MasterEvent
	err              error
}

// EnableMasterRecovery arms the control-plane failover machinery: the
// name node starts journaling metadata (with a checkpoint every
// checkpointEvery records; <= 0 checkpoints only at recovery) and the
// tracker starts journaling its job ledger as a bus subscriber. Call
// before Run and before any ScheduleMasterOutage.
func (t *Tracker) EnableMasterRecovery(checkpointEvery int) {
	if t.master.enabled {
		return
	}
	t.master.enabled = true
	t.master.unobserved = make(map[topology.NodeID]bool)
	t.master.journal = newTrackerJournal(t)
	t.c.NN.EnableJournal(checkpointEvery)
	t.bus.Subscribe(t.master.journal)
}

// ScheduleMasterOutage registers the master to crash at simulated time
// `at` and recover downFor seconds later, rebuilding in the given mode.
// Call after EnableMasterRecovery and before Run.
func (t *Tracker) ScheduleMasterOutage(at, downFor float64, mode dfs.RecoveryMode) {
	t.master.outages = append(t.master.outages, plannedOutage{at: at, down: downFor, mode: mode})
}

// MasterStats returns the control-plane outage tallies.
func (t *Tracker) MasterStats() MasterStats {
	s := t.master.stats
	s.JournalCheckpoints = t.c.NN.JournalCheckpoints()
	s.JournalRecords = t.c.NN.JournalRecords()
	return s
}

// MasterEvents returns the control-plane availability samples, in time
// order.
func (t *Tracker) MasterEvents() []MasterEvent { return t.master.events }

// scheduleInjectedMaster registers every planned outage with the engine.
// Run calls it once, next to the churn and gray injection.
func (t *Tracker) scheduleInjectedMaster() error {
	for _, po := range t.master.outages {
		po := po
		if !t.master.enabled {
			return fmt.Errorf("mapreduce: master outage scheduled without EnableMasterRecovery")
		}
		if po.down <= 0 {
			return fmt.Errorf("mapreduce: master outage downtime %g must be > 0", po.down)
		}
		t.c.Eng.DeferAt(po.at, func() { t.crashMaster(po.mode) })
		t.c.Eng.DeferAt(po.at+po.down, func() { t.recoverMaster() })
	}
	return nil
}

// masterRetryDelay is the capped exponential backoff callers wait before
// re-attempting a master operation that failed with ErrMasterDown —
// repair copies and corruption quarantines poll with it until the master
// returns. Same arithmetic core as the gray read path (internal/retry).
func (t *Tracker) masterRetryDelay(attempt int) float64 {
	hb := t.c.Profile.HeartbeatInterval
	return retry.Backoff{Base: hb / 2, Cap: 4 * hb}.Delay(attempt)
}

// crashMaster takes the control plane down: the name node freezes
// (Crash), every in-flight task attempt dies — the job tracker that knew
// about them is gone, so task trackers discard the work — and their
// inputs requeue through the normal attempt-limit/backoff machinery.
// Crashing an already-down master is a no-op (overlap-safe).
func (t *Tracker) crashMaster(mode dfs.RecoveryMode) {
	m := &t.master
	if m.down {
		return
	}
	if err := t.c.NN.Crash(); err != nil {
		m.err = fmt.Errorf("mapreduce: master crash: %w", err)
		t.c.Eng.Stop()
		return
	}
	now := t.c.Eng.Now()
	m.down = true
	m.mode = mode
	m.downSince = now
	m.outageHeartbeats = 0
	m.outageReads = 0
	m.stats.Outages++

	ev := event.New(event.MasterCrash)
	ev.Aux = int64(t.c.NN.JournalRecords())
	ev.Flag = mode == dfs.RecoverReport
	t.bus.Publish(ev)

	// Kill every in-flight attempt, nodes in ID order, attempts in the
	// same deterministic order the node-death path uses. Unlike killNode
	// the nodes stay up: their slots free immediately and they idle until
	// heartbeats are answered again.
	for _, node := range t.c.Nodes {
		recs := t.inflight[node]
		if len(recs) == 0 {
			continue
		}
		ordered := make([]*taskRec, 0, len(recs))
		for r := range recs {
			ordered = append(ordered, r)
		}
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].isMap != ordered[j].isMap {
				return ordered[i].isMap
			}
			if ordered[i].block != ordered[j].block {
				return ordered[i].block < ordered[j].block
			}
			return ordered[i].job.Spec.ID < ordered[j].job.Spec.ID
		})
		for _, r := range ordered {
			t.c.Eng.Cancel(r.ev)
			fe := event.New(event.TaskFail)
			fe.Job = int32(r.job.Spec.ID)
			fe.Node = int32(node.ID)
			fe.Rack = int32(t.c.Topo.Rack(node.ID))
			// Flag stays false: a master crash is nobody's blacklist blame.
			if r.isMap {
				r.job.runningMaps--
				delete(r.group.recs, r)
				node.FreeMapSlots++
				fe.Block = int64(r.block)
				if !r.group.done && len(r.group.recs) == 0 {
					fe.Aux = 1 // no sibling survives: requeue the input
				}
				m.stats.KilledMaps++
				m.outageReads++
				m.stats.DeferredReads++
			} else {
				r.job.runningReduces--
				r.job.pendingReduces++
				node.FreeReduceSlots++
				m.stats.KilledReduces++
			}
			t.bus.Publish(fe)
		}
		delete(t.inflight, node)
	}
	m.events = append(m.events, MasterEvent{
		Time: now, Kind: MasterWentDown,
		WeightedAvailability: t.c.NN.WeightedAvailability(t.blockWeights()),
	})
}

// recoverMaster brings the control plane back, in strict order: (1) the
// name node rebuilds its registry from checkpoint + journal (or drops to
// a cold view awaiting block reports); (2) the tracker's job ledger is
// rebuilt from the journaled event stream and verified against live
// state, restoring per-node blacklist counters; (3) node deaths and
// rejoins declared during the outage are applied through the normal
// paths — so a node that re-registered cleanly gets its blacklist
// counters forgiven AFTER the journal rebuild, never resurrecting them;
// (4) MasterRecover publishes, firing the invariant checker on the fully
// reconciled state; (5) repair rounds restart (immediately in journal
// mode, at warm completion in report mode).
func (t *Tracker) recoverMaster() {
	m := &t.master
	if !m.down {
		return
	}
	now := t.c.Eng.Now()
	if err := t.c.NN.Recover(m.mode); err != nil {
		m.err = fmt.Errorf("mapreduce: master recovery: %w", err)
		t.c.Eng.Stop()
		return
	}
	m.down = false
	m.recoverAt = now
	m.stats.Downtime += now - m.downSince

	if err := m.journal.rebuild(t); err != nil {
		m.err = fmt.Errorf("mapreduce: tracker journal rebuild at t=%g: %w", now, err)
		t.c.Eng.Stop()
		return
	}

	// Apply outage-time node transitions in arrival order. unobserved
	// stays populated until every application lands: mid-application the
	// invariant checker (fired by the NodeFail/NodeRecover publishes) must
	// still tolerate the not-yet-applied nodes.
	pending := m.pending
	m.pending = nil
	for _, pe := range pending {
		if pe.recover {
			if !t.c.NN.NodeFailed(pe.node) {
				continue // never declared dead: nothing to re-register
			}
			if err := t.c.NN.RecoverNode(pe.node); err != nil {
				continue
			}
			t.recoveryEvents = append(t.recoveryEvents, RecoveryEvent{
				Time:                 now,
				Node:                 pe.node,
				Backlog:              len(t.c.NN.UnderReplicated()),
				WeightedAvailability: t.c.NN.WeightedAvailability(t.blockWeights()),
			})
		} else {
			// Apply even if the node has since rebooted (a later pending
			// rejoin re-registers it): the dead process's replicas must be
			// scrubbed either way — its disk was wiped.
			if t.c.NN.NodeFailed(pe.node) {
				continue
			}
			fev := FailureEvent{Time: now, Node: pe.node, Rack: -1}
			fev.Report = t.c.NN.FailNode(pe.node)
			fev.AvailableBlocks, fev.TotalBlocks = t.c.NN.Availability()
			fev.WeightedAvailability = t.c.NN.WeightedAvailability(t.blockWeights())
			fev.Backlog = len(t.c.NN.UnderReplicated())
			t.failureEvents = append(t.failureEvents, fev)
		}
	}
	m.unobserved = make(map[topology.NodeID]bool)

	ev := event.New(event.MasterRecover)
	ev.Aux = m.outageHeartbeats
	ev.Block = m.outageReads
	ev.Flag = m.mode == dfs.RecoverReport
	t.bus.Publish(ev)

	m.events = append(m.events, MasterEvent{
		Time: now, Kind: MasterCameBack,
		WeightedAvailability: t.c.NN.WeightedAvailability(t.blockWeights()),
	})

	// Journal mode recovers a complete view: repair whatever the outage
	// left under-replicated right away. A warming report-mode master would
	// see every block as lost — it waits for the last report instead
	// (deliverReport schedules the round).
	if !t.c.NN.Warming() && !t.repairDisabled && (len(pending) > 0 || m.mode == dfs.RecoverReport) {
		t.scheduleRepairs()
	}
}

// deliverReport hands one node's block report to a warming master from
// the node's heartbeat, samples the warming availability curve, and —
// when the view is as warm as it will get — restarts repairs.
func (t *Tracker) deliverReport(node *Node) {
	m := &t.master
	if _, err := t.c.NN.DeliverBlockReport(node.ID); err != nil {
		return
	}
	m.stats.BlockReports++
	m.events = append(m.events, MasterEvent{
		Time: t.c.Eng.Now(), Kind: MasterGotReport,
		WeightedAvailability: t.c.NN.WeightedAvailability(t.blockWeights()),
	})
	if !t.c.NN.Warming() {
		m.stats.WarmupTime += t.c.Eng.Now() - m.recoverAt
		if !t.repairDisabled {
			t.scheduleRepairs()
		}
	}
}

// trackerJournal is the job tracker's journaled ledger: a bus subscriber
// that records what a restarted job tracker could know — job arrivals,
// map completions, job finishes, and per-node attempt blame — exactly as
// Hadoop's JobTracker restart replays its job history log. At recovery
// rebuild() verifies the ledger against the live bookkeeping (they are
// fed by the same event stream, so any mismatch is a journaling bug) and
// restores the per-node blacklist counters from it.
type trackerJournal struct {
	t        *Tracker
	jobs     map[int32]*journalJob
	blame    []int
	finished int
}

type journalJob struct {
	numMaps   int
	completed int
	finished  bool
	failed    bool
}

func newTrackerJournal(t *Tracker) *trackerJournal {
	return &trackerJournal{
		t:     t,
		jobs:  make(map[int32]*journalJob),
		blame: make([]int, len(t.c.Nodes)),
	}
}

// HandleEvent implements event.Subscriber.
func (tj *trackerJournal) HandleEvent(ev event.Event) {
	switch ev.Kind {
	case event.JobArrive:
		tj.jobs[ev.Job] = &journalJob{numMaps: int(ev.Aux)}
	case event.TaskComplete:
		// Only map completions carry a block; reduce completions have
		// Block = -1 and do not advance the map ledger.
		if ev.Block >= 0 {
			if r := tj.jobs[ev.Job]; r != nil {
				r.completed++
			}
		}
	case event.JobFinish:
		if r := tj.jobs[ev.Job]; r != nil {
			r.finished = true
			r.failed = ev.Flag
		}
		tj.finished++
	case event.TaskFail:
		// Mirror the live handler's guards exactly (noteNodeTaskFailure):
		// blame only counts while blacklisting is armed and the node is up.
		// Neither side gates on the blacklisted flag, so the two counters
		// stay record-for-record identical whichever subscriber runs first.
		if ev.Flag && ev.Node >= 0 && tj.t.faults.blacklistAfter > 0 && tj.t.c.Nodes[ev.Node].Up {
			tj.blame[ev.Node]++
		}
	case event.NodeRecover:
		// Re-registration forgives blame, in the journal as in the live
		// handler — both hear the same event.
		tj.blame[ev.Node] = 0
	}
}

// rebuild reconstructs the restarted job tracker's state from the ledger:
// it verifies the journaled job counters against the live bookkeeping and
// overwrites the per-node blacklist counters with the journaled blame.
// The overwrite runs BEFORE deferred node rejoins are applied, so a node
// that re-registered cleanly during the outage is forgiven by its rejoin's
// NodeRecover — the journal never resurrects its counters afterwards.
func (tj *trackerJournal) rebuild(t *Tracker) error {
	for _, j := range t.active {
		id := int32(j.Spec.ID)
		r := tj.jobs[id]
		if r == nil {
			return fmt.Errorf("job %d missing from the journal", id)
		}
		if r.finished {
			return fmt.Errorf("job %d journaled finished but still active", id)
		}
		if r.numMaps != j.Spec.NumMaps {
			return fmt.Errorf("job %d journaled %d maps, live %d", id, r.numMaps, j.Spec.NumMaps)
		}
		if r.completed != j.CompletedMaps() {
			return fmt.Errorf("job %d journaled %d completed maps, live %d", id, r.completed, j.CompletedMaps())
		}
	}
	if tj.finished != t.completed {
		return fmt.Errorf("journal lists %d finished jobs, live %d", tj.finished, t.completed)
	}
	for n := range tj.blame {
		if tj.blame[n] != t.faults.nodeTaskFailures[n] {
			return fmt.Errorf("node %d journaled blame %d, live %d", n, tj.blame[n], t.faults.nodeTaskFailures[n])
		}
	}
	copy(t.faults.nodeTaskFailures, tj.blame)
	return nil
}
