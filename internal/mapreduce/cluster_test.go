package mapreduce

import (
	"math"
	"testing"

	"dare/internal/config"
	"dare/internal/stats"
	"dare/internal/topology"
)

func testProfile() *config.Profile {
	p := config.CCT()
	p.Slaves = 8
	return p
}

func TestNewClusterValidatesProfile(t *testing.T) {
	p := testProfile()
	p.Slaves = 0
	if _, err := NewCluster(p, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestNewClusterSamplesPerNodeBandwidth(t *testing.T) {
	c, err := NewCluster(testProfile(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 8 {
		t.Fatalf("nodes %d", len(c.Nodes))
	}
	for _, n := range c.Nodes {
		if n.DiskBW < 145 || n.DiskBW > 168 {
			t.Fatalf("disk BW %v outside CCT range", n.DiskBW)
		}
		if n.FreeMapSlots != c.Profile.MapSlotsPerNode {
			t.Fatal("map slots not initialized")
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	a, _ := NewCluster(testProfile(), 3)
	b, _ := NewCluster(testProfile(), 3)
	for i := range a.Nodes {
		if a.Nodes[i].DiskBW != b.Nodes[i].DiskBW || a.Nodes[i].NetBW != b.Nodes[i].NetBW {
			t.Fatal("cluster build not deterministic")
		}
	}
}

func TestLocalReadTime(t *testing.T) {
	c, _ := NewCluster(testProfile(), 4)
	size := int64(128 * config.MB)
	rt := c.LocalReadTime(0, size)
	want := 128.0 / c.Nodes[0].DiskBW
	if math.Abs(rt-want) > 1e-9 {
		t.Fatalf("local read %v, want %v", rt, want)
	}
}

func TestRemoteReadSlowerThanLocal(t *testing.T) {
	c, _ := NewCluster(testProfile(), 5)
	f, err := c.NN.CreateFile("f", 1, 128*config.MB, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	var dst topology.NodeID = -1
	for n := 0; n < len(c.Nodes); n++ {
		if !c.NN.HasReplica(b, topology.NodeID(n)) {
			dst = topology.NodeID(n)
			break
		}
	}
	if dst < 0 {
		t.Skip("all nodes hold the block")
	}
	remote, src, err := c.RemoteReadTime(b, dst, 128*config.MB)
	if err != nil {
		t.Fatal(err)
	}
	if !c.NN.HasReplica(b, src) {
		t.Fatal("source does not hold block")
	}
	local := c.LocalReadTime(dst, 128*config.MB)
	if remote <= local {
		t.Fatalf("remote read %v not slower than local %v (CCT net < disk)", remote, local)
	}
}

func TestRemoteReadContention(t *testing.T) {
	c, _ := NewCluster(testProfile(), 6)
	f, _ := c.NN.CreateFile("f", 1, 128*config.MB, 0)
	b := f.Blocks[0]
	var dst topology.NodeID = -1
	for n := 0; n < len(c.Nodes); n++ {
		if !c.NN.HasReplica(b, topology.NodeID(n)) {
			dst = topology.NodeID(n)
			break
		}
	}
	free, _, err := c.RemoteReadTime(b, dst, 128*config.MB)
	if err != nil {
		t.Fatal(err)
	}
	c.Nodes[dst].ActiveRemoteReads = 3
	busy, _, err := c.RemoteReadTime(b, dst, 128*config.MB)
	if err != nil {
		t.Fatal(err)
	}
	if busy <= free {
		t.Fatalf("contended read %v not slower than free %v", busy, free)
	}
}

func TestRemoteReadNoReplicaError(t *testing.T) {
	c, _ := NewCluster(testProfile(), 7)
	if _, _, err := c.RemoteReadTime(999, 0, 100); err == nil {
		t.Fatal("missing block should error")
	}
}

func TestChooseSourcePrefersFewestHops(t *testing.T) {
	p := testProfile()
	p.RackSize = 4 // two racks of 4
	c, err := NewCluster(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := c.NN.CreateFile("f", 20, config.MB, 0)
	// For every block and every non-holding destination, the chosen source
	// must be at minimum hop distance among all replicas.
	for _, b := range f.Blocks {
		for n := 0; n < len(c.Nodes); n++ {
			dst := topology.NodeID(n)
			if c.NN.HasReplica(b, dst) {
				continue
			}
			src, ok := c.chooseSource(b, dst)
			if !ok {
				t.Fatal("no source found")
			}
			got := c.Topo.Hops(src, dst)
			for _, loc := range c.NN.Locations(b) {
				if h := c.Topo.Hops(loc, dst); h < got {
					t.Fatalf("source %d at %d hops but %d at %d hops exists", src, got, loc, h)
				}
			}
		}
	}
}

func TestDedicatedRunTimeWaves(t *testing.T) {
	c, _ := NewCluster(testProfile(), 9)
	slots := c.TotalMapSlots()
	oneWave := c.DedicatedRunTime(1, 1.0, 0, 0, 0)
	fullWave := c.DedicatedRunTime(slots, 1.0, 0, 0, 0)
	twoWaves := c.DedicatedRunTime(slots+1, 1.0, 0, 0, 0)
	if oneWave != fullWave {
		t.Fatalf("1 task (%v) and %d tasks (%v) should take one wave", oneWave, slots, fullWave)
	}
	if twoWaves <= fullWave {
		t.Fatalf("slots+1 tasks (%v) must take longer than one wave (%v)", twoWaves, fullWave)
	}
	withReduce := c.DedicatedRunTime(1, 1.0, 1, 5.0, 0)
	if withReduce <= oneWave {
		t.Fatal("reduce phase must extend the dedicated run time")
	}
	withOutput := c.DedicatedRunTime(1, 1.0, 1, 5.0, 4)
	if withOutput <= withReduce {
		t.Fatal("output writes must extend the dedicated run time")
	}
}

func TestTaskNoisePositive(t *testing.T) {
	c, _ := NewCluster(testProfile(), 10)
	for i := 0; i < 1000; i++ {
		v := c.taskNoise()
		if v < 0.2 {
			t.Fatalf("noise %v below floor", v)
		}
	}
	// Zero-noise profile yields exactly 1.
	p := testProfile()
	p.TaskNoiseSigma = 0
	c2, _ := NewCluster(p, 11)
	if c2.taskNoise() != 1 {
		t.Fatal("zero sigma should disable noise")
	}
}

func TestTaskNoiseMeanNearOne(t *testing.T) {
	c, _ := NewCluster(testProfile(), 12)
	var s stats.Summary
	for i := 0; i < 50000; i++ {
		s.Add(c.taskNoise())
	}
	s.Finalize()
	if math.Abs(s.Mean-1) > 0.02 {
		t.Fatalf("noise mean %v, want ~1 (unbiased)", s.Mean)
	}
}

func TestLocalityString(t *testing.T) {
	if NodeLocal.String() != "node-local" || RackLocal.String() != "rack-local" || Remote.String() != "remote" {
		t.Fatal("locality strings wrong")
	}
}
