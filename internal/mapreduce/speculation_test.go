package mapreduce_test

import (
	"testing"

	"dare/internal/config"
	"dare/internal/mapreduce"
	"dare/internal/scheduler"
	"dare/internal/workload"
)

// noisyProfile is an EC2-like profile with heavy task noise, the regime
// speculation exists for.
func noisyProfile() *config.Profile {
	p := config.EC2()
	p.Slaves = 12
	p.TaskNoiseSigma = 0.6
	return p
}

func specRun(t *testing.T, speculative bool, seed uint64) ([]mapreduce.Result, *mapreduce.Tracker) {
	t.Helper()
	p := noisyProfile()
	p.SpeculativeExecution = speculative
	c, err := mapreduce.NewCluster(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.Generate(workload.GenConfig{NumJobs: 80, NumFiles: 15, MeanInterarrival: 0.8, Seed: seed})
	tr, err := mapreduce.NewTracker(c, wl, scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	return results, tr
}

func TestSpeculationLaunchesBackups(t *testing.T) {
	_, off := specRun(t, false, 1)
	if off.SpeculativeLaunches() != 0 {
		t.Fatal("speculation ran while disabled")
	}
	_, on := specRun(t, true, 1)
	if on.SpeculativeLaunches() == 0 {
		t.Fatal("no backups launched under heavy noise")
	}
}

func TestSpeculationPreservesTaskAccounting(t *testing.T) {
	results, _ := specRun(t, true, 2)
	for _, r := range results {
		if r.Local+r.Rack+r.Remote != r.NumMaps {
			t.Fatalf("job %d: task accounting broken with speculation: %d+%d+%d != %d",
				r.ID, r.Local, r.Rack, r.Remote, r.NumMaps)
		}
		if r.Turnaround <= 0 {
			t.Fatalf("job %d: bad turnaround %v", r.ID, r.Turnaround)
		}
	}
}

func TestSpeculationDeterministic(t *testing.T) {
	a, ta := specRun(t, true, 3)
	b, tb := specRun(t, true, 3)
	if ta.SpeculativeLaunches() != tb.SpeculativeLaunches() {
		t.Fatal("speculative launch counts differ between identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs between identical runs", i)
		}
	}
}

func TestSpeculationBoundedOverhead(t *testing.T) {
	// Naive Hadoop-style speculation is known to be of mixed value on
	// heterogeneous clusters (Zaharia et al.'s LATE paper observed it can
	// even hurt on EC2): backups issue extra remote reads that contend on
	// NICs, and the duration-variance heuristic fires on tasks that were
	// merely noisy. Our model reproduces that texture, so the assertion is
	// a bound, not an improvement claim: with backups firing, the mean
	// winning map duration stays within 25% of the non-speculative run.
	off, _ := specRun(t, false, 4)
	on, tr := specRun(t, true, 4)
	if tr.SpeculativeLaunches() == 0 {
		t.Skip("no stragglers for this seed")
	}
	var offSum, onSum float64
	var offMaps, onMaps int
	for i := range off {
		offSum += off[i].MapTimeSum
		offMaps += off[i].NumMaps
		onSum += on[i].MapTimeSum
		onMaps += on[i].NumMaps
	}
	offMean := offSum / float64(offMaps)
	onMean := onSum / float64(onMaps)
	if onMean > offMean*1.25 {
		t.Fatalf("speculation blew past the overhead bound: %.2f -> %.2f", offMean, onMean)
	}
}

func TestSpeculationWithFailures(t *testing.T) {
	// Backups and failure injection interact: killing a node mid-run with
	// speculation on must still complete every job exactly once.
	p := noisyProfile()
	p.SpeculativeExecution = true
	c, err := mapreduce.NewCluster(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.Generate(workload.GenConfig{NumJobs: 60, NumFiles: 12, MeanInterarrival: 0.8, Seed: 5})
	tr, err := mapreduce.NewTracker(c, wl, scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	tr.ScheduleNodeFailure(2, 10)
	tr.ScheduleNodeFailure(6, 20)
	results, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 60 {
		t.Fatalf("results %d", len(results))
	}
	for _, r := range results {
		if r.Local+r.Rack+r.Remote != r.NumMaps {
			t.Fatalf("job %d lost or duplicated tasks", r.ID)
		}
	}
	if err := c.NN.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
