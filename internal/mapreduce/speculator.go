package mapreduce

import (
	"sort"

	"dare/internal/event"
	"dare/internal/policy"
)

// speculator owns speculative execution: it watches task groups, and on
// every Heartbeat event fills map slots the scheduler left idle with
// backup attempts for stragglers (Hadoop's speculative execution, which
// §VI composes with DARE on the noisy EC2 profile). It subscribes to the
// bus rather than being inlined in the tracker's heartbeat loop.
type speculator struct {
	t *Tracker
	// groups holds active attempt groups in creation order, for
	// determinism; findStraggler compacts finished ones as it scans.
	groups   []*taskGroup
	launched int
	// qualify is the declarative straggler gate, lazily compiled from the
	// profile's speculative factor (or replaced via SetSpeculationRule).
	// The built-in is: completed_maps >= 3 AND attempts == 1 AND
	// elapsed > factor × mean_map — the exact historical test.
	qualify policy.Rule
	ctx     specCtx
}

// specCtx exposes one candidate group's signals to the qualify rule:
// "completed_maps" (the job's finished maps, the duration-estimate
// sample), "attempts" (running attempts in the group), "elapsed" (seconds
// since the group started), "mean_map" (the job's mean map duration,
// absent until a map completes), and "now".
type specCtx struct {
	j   *Job
	g   *taskGroup
	now float64
}

// Val implements policy.Context.
func (c *specCtx) Val(key string) (float64, bool) {
	switch key {
	case "completed_maps":
		return float64(c.j.completedMaps), true
	case "attempts":
		return float64(len(c.g.recs)), true
	case "elapsed":
		return c.now - c.g.started, true
	case "mean_map":
		if c.j.completedMaps == 0 {
			return 0, false
		}
		return c.j.mapTimeSum / float64(c.j.completedMaps), true
	case "now":
		return c.now, true
	}
	return 0, false
}

// SetSpeculationRule replaces the straggler-qualification rule (from a
// -policy-file config). Call before Run.
func (t *Tracker) SetSpeculationRule(r policy.Rule) { t.spec.qualify = r }

// observe registers a new attempt group for straggler tracking. It is a
// direct call from launchMap, not an event reaction: groups are live
// pointers that cannot ride a scalar event.
func (s *speculator) observe(g *taskGroup) {
	if s.t.c.Profile.SpeculativeExecution {
		s.groups = append(s.groups, g)
	}
}

// HandleEvent implements event.Subscriber: at each heartbeat, launch
// backup attempts while the node has idle map slots and stragglers exist.
func (s *speculator) HandleEvent(ev event.Event) {
	if ev.Kind != event.Heartbeat || !s.t.c.Profile.SpeculativeExecution {
		return
	}
	node := s.t.c.Nodes[ev.Node]
	for node.FreeMapSlots > 0 {
		g := s.findStraggler(node)
		if g == nil {
			break
		}
		s.launched++
		sp := event.New(event.TaskSpeculate)
		sp.Job = int32(g.job.Spec.ID)
		sp.Block = int64(g.block)
		sp.Node = ev.Node
		sp.Rack = ev.Rack
		s.t.bus.Publish(sp)
		s.t.launchAttempt(node, g)
	}
}

// findStraggler returns the oldest running map-task group that qualifies
// for a speculative backup on node, compacting finished groups as it
// scans.
func (s *speculator) findStraggler(node *Node) *taskGroup {
	if s.qualify == nil {
		rule, err := policy.DefaultSpeculation(s.t.c.Profile.SpeculativeFactor).Compile(0)
		if err != nil {
			panic("mapreduce: built-in speculation rule: " + err.Error())
		}
		s.qualify = rule
	}
	s.ctx.now = s.t.c.Eng.Now()
	kept := s.groups[:0]
	var found *taskGroup
	for _, g := range s.groups {
		if g.done || len(g.recs) == 0 {
			continue // completed, or all attempts died with the node
		}
		kept = append(kept, g)
		if found != nil {
			continue
		}
		s.ctx.j, s.ctx.g = g.job, g
		if !s.qualify.Eval(&s.ctx) {
			continue
		}
		onThisNode := false
		for r := range g.recs {
			if r.node == node {
				onThisNode = true
			}
		}
		if !onThisNode {
			found = g
		}
	}
	s.groups = kept
	return found
}

// killSiblings cancels any backup attempt still running after g's winning
// attempt completed (at most one backup; sorted iteration for determinism
// regardless).
func (s *speculator) killSiblings(g *taskGroup) {
	if len(g.recs) == 0 {
		return
	}
	siblings := make([]*taskRec, 0, len(g.recs))
	for r := range g.recs {
		siblings = append(siblings, r)
	}
	sort.Slice(siblings, func(i, j int) bool { return siblings[i].node.ID < siblings[j].node.ID })
	for _, r := range siblings {
		s.t.c.Eng.Cancel(r.ev)
		s.t.untrack(r.node, r)
		r.node.FreeMapSlots++
		g.job.runningMaps--
		delete(g.recs, r)
	}
}

// SpeculativeLaunches reports how many backup attempts were started.
func (t *Tracker) SpeculativeLaunches() int { return t.spec.launched }
