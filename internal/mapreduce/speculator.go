package mapreduce

import (
	"sort"

	"dare/internal/event"
)

// speculator owns speculative execution: it watches task groups, and on
// every Heartbeat event fills map slots the scheduler left idle with
// backup attempts for stragglers (Hadoop's speculative execution, which
// §VI composes with DARE on the noisy EC2 profile). It subscribes to the
// bus rather than being inlined in the tracker's heartbeat loop.
type speculator struct {
	t *Tracker
	// groups holds active attempt groups in creation order, for
	// determinism; findStraggler compacts finished ones as it scans.
	groups   []*taskGroup
	launched int
}

// observe registers a new attempt group for straggler tracking. It is a
// direct call from launchMap, not an event reaction: groups are live
// pointers that cannot ride a scalar event.
func (s *speculator) observe(g *taskGroup) {
	if s.t.c.Profile.SpeculativeExecution {
		s.groups = append(s.groups, g)
	}
}

// HandleEvent implements event.Subscriber: at each heartbeat, launch
// backup attempts while the node has idle map slots and stragglers exist.
func (s *speculator) HandleEvent(ev event.Event) {
	if ev.Kind != event.Heartbeat || !s.t.c.Profile.SpeculativeExecution {
		return
	}
	node := s.t.c.Nodes[ev.Node]
	for node.FreeMapSlots > 0 {
		g := s.findStraggler(node)
		if g == nil {
			break
		}
		s.launched++
		sp := event.New(event.TaskSpeculate)
		sp.Job = int32(g.job.Spec.ID)
		sp.Block = int64(g.block)
		sp.Node = ev.Node
		sp.Rack = ev.Rack
		s.t.bus.Publish(sp)
		s.t.launchAttempt(node, g)
	}
}

// findStraggler returns the oldest running map-task group that qualifies
// for a speculative backup on node, compacting finished groups as it
// scans.
func (s *speculator) findStraggler(node *Node) *taskGroup {
	factor := s.t.c.Profile.SpeculativeFactor
	if factor <= 1 {
		factor = 1.5
	}
	now := s.t.c.Eng.Now()
	kept := s.groups[:0]
	var found *taskGroup
	for _, g := range s.groups {
		if g.done || len(g.recs) == 0 {
			continue // completed, or all attempts died with the node
		}
		kept = append(kept, g)
		if found != nil {
			continue
		}
		j := g.job
		if j.completedMaps < 3 || len(g.recs) != 1 {
			continue // need a duration estimate; one backup max
		}
		mean := j.mapTimeSum / float64(j.completedMaps)
		if now-g.started <= factor*mean {
			continue
		}
		onThisNode := false
		for r := range g.recs {
			if r.node == node {
				onThisNode = true
			}
		}
		if !onThisNode {
			found = g
		}
	}
	s.groups = kept
	return found
}

// killSiblings cancels any backup attempt still running after g's winning
// attempt completed (at most one backup; sorted iteration for determinism
// regardless).
func (s *speculator) killSiblings(g *taskGroup) {
	if len(g.recs) == 0 {
		return
	}
	siblings := make([]*taskRec, 0, len(g.recs))
	for r := range g.recs {
		siblings = append(siblings, r)
	}
	sort.Slice(siblings, func(i, j int) bool { return siblings[i].node.ID < siblings[j].node.ID })
	for _, r := range siblings {
		s.t.c.Eng.Cancel(r.ev)
		s.t.untrack(r.node, r)
		r.node.FreeMapSlots++
		g.job.runningMaps--
		delete(g.recs, r)
	}
}

// SpeculativeLaunches reports how many backup attempts were started.
func (t *Tracker) SpeculativeLaunches() int { return t.spec.launched }
