package mapreduce_test

import (
	"testing"

	"dare/internal/config"
	"dare/internal/mapreduce"
	"dare/internal/scheduler"
	"dare/internal/workload"
)

// BenchmarkSmallSimulation measures a complete 50-job cluster simulation:
// file load, arrivals, heartbeats, task lifecycle, metrics.
func BenchmarkSmallSimulation(b *testing.B) {
	p := config.CCT()
	p.Slaves = 8
	wl := workload.Generate(workload.GenConfig{NumJobs: 50, NumFiles: 20, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := mapreduce.NewCluster(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := mapreduce.NewTracker(c, wl, scheduler.NewFIFO())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
