package mapreduce

// In-package tests for the event-driven locality-index maintenance: the
// regression of interest is that a replica removal (eviction, balancer
// move) eagerly drops the job's index entries, so an evicted replica's
// node is never offered as node-local again. The old single-slot replica
// hook wiring silently ignored removals.

import (
	"testing"

	"dare/internal/config"
	"dare/internal/dfs"
	"dare/internal/topology"
	"dare/internal/workload"
)

// fifoSelector is a minimal in-package TaskSelector (the real schedulers
// live in internal/scheduler, which imports this package).
type fifoSelector struct{ jobs []*Job }

func (s *fifoSelector) Name() string     { return "test-fifo" }
func (s *fifoSelector) AddJob(j *Job)    { s.jobs = append(s.jobs, j) }
func (s *fifoSelector) RemoveJob(j *Job) {}
func (s *fifoSelector) SelectMapTask(node topology.NodeID, now float64) (*Job, dfs.BlockID, bool) {
	for _, j := range s.jobs {
		if b, ok := j.TakeLocalBlock(node); ok {
			return j, b, true
		}
	}
	return nil, 0, false
}
func (s *fifoSelector) SelectReduceTask(node topology.NodeID, now float64) (*Job, bool) {
	return nil, false
}

// newIndexedJob builds a cluster plus one arrived job large enough
// (NumMaps >= indexMinMaps) to use the inverted locality index.
func newIndexedJob(t *testing.T, seed uint64) (*Tracker, *Job) {
	t.Helper()
	p := config.CCT()
	p.Slaves = 8
	c, err := NewCluster(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	wl := &workload.Workload{
		Name:  "events-test",
		Files: []workload.FileSpec{{Name: "f0", Blocks: 2 * indexMinMaps}},
		Jobs: []workload.Job{{
			ID: 0, Arrival: 0, File: 0, FirstBlock: 0, NumMaps: 2 * indexMinMaps,
			CPUPerTask: 1, NumReduces: 1, ReduceTime: 1, OutputBlocks: 1,
		}},
	}
	tr, err := NewTracker(c, wl, &fifoSelector{})
	if err != nil {
		t.Fatal(err)
	}
	tr.arrive(wl.Jobs[0])
	j := tr.jobByID[0]
	if j == nil {
		t.Fatal("job 0 not active after arrive")
	}
	if j.linearScan {
		t.Fatal("test job unexpectedly on the linear-scan path")
	}
	return tr, j
}

// nodeWithoutReplica returns a node holding no replica of b.
func nodeWithoutReplica(t *testing.T, tr *Tracker, b dfs.BlockID) *Node {
	t.Helper()
	for _, n := range tr.c.Nodes {
		if !tr.c.NN.HasReplica(b, n.ID) {
			return n
		}
	}
	t.Fatal("every node holds a replica of the test block")
	return nil
}

func TestReplicaRemovalDropsNodeIndexEagerly(t *testing.T) {
	tr, j := newIndexedJob(t, 1)
	b := tr.files[0].Blocks[0]
	seq := j.pendingSeq[b]
	if seq == 0 {
		t.Fatal("test block is not pending")
	}
	n := nodeWithoutReplica(t, tr, b)

	if err := tr.c.NN.AddDynamicReplica(b, n.ID); err != nil {
		t.Fatal(err)
	}
	if !heapHas((*j.nodeHeap(n.ID)), b, seq) {
		t.Fatalf("ReplicaAdd event did not index block %d under node %d", b, n.ID)
	}

	if err := tr.c.NN.RemoveDynamicReplica(b, n.ID); err != nil {
		t.Fatal(err)
	}
	if heapHas((*j.nodeHeap(n.ID)), b, seq) {
		t.Fatalf("ReplicaRemove event left a stale index entry for block %d under node %d", b, n.ID)
	}

	// The block is still pending, but node n must never be offered it as
	// local: drain every local offer for n and make sure b is not among
	// them.
	for {
		got, ok := j.TakeLocalBlock(n.ID)
		if !ok {
			break
		}
		if got == b {
			t.Fatalf("evicted replica's node %d was offered block %d as node-local", n.ID, b)
		}
	}
}

func TestReplicaRemovalKeepsRackIndexWhileCovered(t *testing.T) {
	tr, j := newIndexedJob(t, 2)
	b := tr.files[0].Blocks[0]
	seq := j.pendingSeq[b]
	topo := tr.c.Topo

	// Find a rack with two nodes and no replica of b at all.
	var n1, n2 *Node
	for _, a := range tr.c.Nodes {
		if tr.c.NN.HasReplica(b, a.ID) {
			continue
		}
		rackHasReplica := false
		tr.c.NN.ForEachLocation(b, func(loc topology.NodeID, _ dfs.ReplicaKind) bool {
			if topo.Rack(loc) == topo.Rack(a.ID) {
				rackHasReplica = true
				return false
			}
			return true
		})
		if rackHasReplica {
			continue
		}
		for _, c2 := range tr.c.Nodes {
			if c2.ID != a.ID && topo.Rack(c2.ID) == topo.Rack(a.ID) && !tr.c.NN.HasReplica(b, c2.ID) {
				n1, n2 = a, c2
				break
			}
		}
		if n1 != nil {
			break
		}
	}
	if n1 == nil {
		t.Skip("no replica-free rack with two nodes in this layout")
	}
	rack := topo.Rack(n1.ID)

	if err := tr.c.NN.AddDynamicReplica(b, n1.ID); err != nil {
		t.Fatal(err)
	}
	if err := tr.c.NN.AddDynamicReplica(b, n2.ID); err != nil {
		t.Fatal(err)
	}
	if !heapHas((*j.rackHeap(rack)), b, seq) {
		t.Fatalf("rack %d not indexed after replica adds", rack)
	}

	// Removing one of two same-rack replicas must keep the rack entry: a
	// rack entry stands for "some replica in this rack", and one survives.
	if err := tr.c.NN.RemoveDynamicReplica(b, n1.ID); err != nil {
		t.Fatal(err)
	}
	if heapHas((*j.nodeHeap(n1.ID)), b, seq) {
		t.Fatalf("node %d index kept a removed replica", n1.ID)
	}
	if !heapHas((*j.rackHeap(rack)), b, seq) {
		t.Fatalf("rack %d index dropped while node %d still holds a replica", rack, n2.ID)
	}

	// Removing the last in-rack replica drops the rack entry too.
	if err := tr.c.NN.RemoveDynamicReplica(b, n2.ID); err != nil {
		t.Fatal(err)
	}
	if heapHas((*j.rackHeap(rack)), b, seq) {
		t.Fatalf("rack %d index kept an entry with no in-rack replica left", rack)
	}
}

func TestBlockHeapRemovePreservesPopOrder(t *testing.T) {
	var h blockHeap
	for _, e := range []pendingRef{{seq: 5, b: 50}, {seq: 1, b: 10}, {seq: 3, b: 30}, {seq: 2, b: 20}, {seq: 4, b: 40}} {
		h.push(e)
	}
	h.remove(30, 3)
	want := []uint64{1, 2, 4, 5}
	for i, w := range want {
		if got := h.pop(); got.seq != w {
			t.Fatalf("pop %d: seq %d, want %d", i, got.seq, w)
		}
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d left", len(h))
	}
}
