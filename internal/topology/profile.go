package topology

import (
	"dare/internal/config"
	"dare/internal/stats"
)

// FromProfile instantiates the topology described by a cluster profile.
// Dedicated profiles get a deterministic rack layout; virtual profiles get
// a provider-style random scatter drawn from g (part of the experiment's
// seeded state). The topology covers the slave nodes only — the master
// runs no tasks and stores no blocks, as in Hadoop.
func FromProfile(p *config.Profile, g *stats.RNG) Topology {
	if p.Kind == config.Virtual {
		return NewVirtual(VirtualParams{
			Nodes:     p.Slaves,
			Racks:     p.Racks,
			Pods:      p.Pods,
			RTT:       p.RTT,
			PerHopRTT: p.PerHopRTT,
		}, g)
	}
	return NewDedicated(p.Slaves, p.RackSize, p.RTT)
}
