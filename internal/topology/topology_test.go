package topology

import (
	"testing"
	"testing/quick"

	"dare/internal/stats"
)

func TestDedicatedSingleRack(t *testing.T) {
	d := NewDedicated(20, 0, stats.Constant{V: 0.00018})
	if d.N() != 20 {
		t.Fatalf("N=%d", d.N())
	}
	for i := 0; i < 20; i++ {
		if d.Rack(NodeID(i)) != 0 {
			t.Fatalf("node %d not in rack 0", i)
		}
	}
	if d.Hops(3, 3) != 0 {
		t.Fatal("self hops should be 0")
	}
	if d.Hops(0, 19) != 2 {
		t.Fatalf("same-rack hops = %d, want 2", d.Hops(0, 19))
	}
}

func TestDedicatedMultiRack(t *testing.T) {
	d := NewDedicated(8, 4, stats.Constant{V: 0})
	if d.Rack(0) != 0 || d.Rack(3) != 0 || d.Rack(4) != 1 || d.Rack(7) != 1 {
		t.Fatal("rack assignment wrong")
	}
	if d.Hops(0, 3) != 2 {
		t.Fatal("same-rack pair should be 2 hops")
	}
	if d.Hops(0, 4) != 4 {
		t.Fatal("cross-rack pair should be 4 hops")
	}
}

func TestDedicatedRTT(t *testing.T) {
	d := NewDedicated(4, 0, stats.Constant{V: 0.5})
	g := stats.NewRNG(1)
	if d.SampleRTT(1, 1, g) != 0 {
		t.Fatal("self RTT should be 0")
	}
	if d.SampleRTT(0, 1, g) != 0.5 {
		t.Fatal("RTT should follow dist")
	}
	// Negative samples clamp to zero.
	neg := NewDedicated(4, 0, stats.Constant{V: -1})
	if neg.SampleRTT(0, 1, g) != 0 {
		t.Fatal("negative RTT not clamped")
	}
}

func TestVirtualPlacementDeterministic(t *testing.T) {
	p := VirtualParams{Nodes: 20, Racks: 40, Pods: 2, RTT: stats.Constant{V: 0.001}}
	a := NewVirtual(p, stats.NewRNG(9))
	b := NewVirtual(p, stats.NewRNG(9))
	for i := 0; i < 20; i++ {
		if a.Rack(NodeID(i)) != b.Rack(NodeID(i)) || a.Pod(NodeID(i)) != b.Pod(NodeID(i)) {
			t.Fatal("placement not deterministic under equal seeds")
		}
	}
}

func TestVirtualHopLevels(t *testing.T) {
	p := VirtualParams{Nodes: 50, Racks: 10, Pods: 3, RTT: stats.Constant{V: 0.001}}
	v := NewVirtual(p, stats.NewRNG(3))
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			h := v.Hops(NodeID(i), NodeID(j))
			if i == j {
				if h != 0 {
					t.Fatal("self hops nonzero")
				}
				continue
			}
			switch {
			case v.Rack(NodeID(i)) == v.Rack(NodeID(j)):
				if h != 2 {
					t.Fatalf("same-rack pair %d hops", h)
				}
			case v.Pod(NodeID(i)) == v.Pod(NodeID(j)):
				if h != 4 {
					t.Fatalf("same-pod pair %d hops", h)
				}
			default:
				if h != 6 {
					t.Fatalf("cross-pod pair %d hops", h)
				}
			}
		}
	}
}

func TestHopSymmetryProperty(t *testing.T) {
	f := func(seed uint64, ai, bi uint8) bool {
		g := stats.NewRNG(seed)
		v := NewVirtual(VirtualParams{Nodes: 30, Racks: 15, Pods: 3, RTT: stats.Constant{V: 0}}, g)
		a := NodeID(int(ai) % 30)
		b := NodeID(int(bi) % 30)
		return v.Hops(a, b) == v.Hops(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualPerHopRTT(t *testing.T) {
	p := VirtualParams{Nodes: 2, Racks: 2, Pods: 2, RTT: stats.Constant{V: 0.001}, PerHopRTT: 0.002}
	// Force cross-pod by retrying seeds until the two nodes differ in pod.
	for seed := uint64(0); seed < 100; seed++ {
		v := NewVirtual(p, stats.NewRNG(seed))
		if v.Pod(0) != v.Pod(1) {
			g := stats.NewRNG(1)
			rtt := v.SampleRTT(0, 1, g)
			want := 0.001 + 4*0.002 // 6 hops => 4 extra
			if diff := rtt - want; diff < -1e-12 || diff > 1e-12 {
				t.Fatalf("rtt %v, want %v", rtt, want)
			}
			return
		}
	}
	t.Skip("no cross-pod placement found in 100 seeds (unlikely)")
}

func TestHopHistogramDedicated(t *testing.T) {
	d := NewDedicated(20, 0, stats.Constant{V: 0})
	h := HopHistogram(d)
	if h.Total() != 190 {
		t.Fatalf("pair count %d, want 190", h.Total())
	}
	if h.Fraction(2) != 1 {
		t.Fatalf("single-rack cluster should be all 2-hop, got fraction %v", h.Fraction(2))
	}
}

func TestHopHistogramVirtualConcentratesAtFour(t *testing.T) {
	// EC2-like: many racks, few pods -> mass at 4 hops (Fig. 1).
	p := VirtualParams{Nodes: 20, Racks: 60, Pods: 2, RTT: stats.Constant{V: 0}}
	v := NewVirtual(p, stats.NewRNG(42))
	h := HopHistogram(v)
	if h.Fraction(4) < 0.3 {
		t.Fatalf("4-hop fraction %v; expected the mode near 4 hops", h.Fraction(4))
	}
	if h.Fraction(2) > 0.3 {
		t.Fatalf("2-hop fraction %v; EC2-like spread should have few same-rack pairs", h.Fraction(2))
	}
}

func TestAllPairsRTTCount(t *testing.T) {
	d := NewDedicated(5, 0, stats.Constant{V: 0.1})
	g := stats.NewRNG(2)
	rtts := AllPairsRTT(d, g)
	if len(rtts) != 20 {
		t.Fatalf("got %d RTTs, want 20", len(rtts))
	}
	for _, r := range rtts {
		if r != 0.1 {
			t.Fatalf("unexpected RTT %v", r)
		}
	}
}

func TestNewDedicatedPanicsOnBadNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDedicated(0, 0, stats.Constant{V: 0})
}

func TestNewVirtualPanicsOnBadNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVirtual(VirtualParams{Nodes: 0}, stats.NewRNG(1))
}

func TestVirtualDefaults(t *testing.T) {
	// Racks/Pods <= 0 fall back to sane defaults without panicking.
	v := NewVirtual(VirtualParams{Nodes: 5, RTT: stats.Constant{V: 0}}, stats.NewRNG(1))
	if v.N() != 5 {
		t.Fatalf("N=%d", v.N())
	}
}
