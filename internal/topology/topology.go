// Package topology models the physical/virtual network layout of a
// cluster: which rack each node sits in, how many switch hops separate two
// nodes, and the round-trip time distribution between them.
//
// Two concrete layouts mirror the paper's two testbeds (§II-B, Table I,
// Fig. 1):
//
//   - Dedicated: a small in-house cluster (the Illinois CCT) where all
//     nodes sit in one or two racks and any two nodes are 1–2 hops apart,
//     with tight, low RTTs.
//   - Virtual: a public-cloud allocation (EC2) where the provider scatters
//     instances across racks and pods, so most node pairs are ~4 hops
//     apart (Fig. 1) and RTTs are heavy-tailed (Table I: mean 0.77 ms,
//     max 75 ms).
package topology

import (
	"fmt"

	"dare/internal/stats"
)

// NodeID identifies a node within a cluster, in [0, N).
type NodeID int

// Topology exposes the cluster layout queried by the schedulers (rack
// locality), the DFS placement policy, and the transfer cost model.
type Topology interface {
	// N reports the number of nodes.
	N() int
	// Rack reports the rack index of a node.
	Rack(n NodeID) int
	// Hops reports the switch-hop count between two nodes (0 for the same
	// node). Hops is symmetric.
	Hops(a, b NodeID) int
	// SampleRTT draws a round-trip time in seconds between two distinct
	// nodes using g.
	SampleRTT(a, b NodeID, g *stats.RNG) float64
}

// Dedicated is a single-site cluster: nodes are packed into racks of
// RackSize consecutive nodes. Same-rack pairs are 2 hops apart (host → ToR
// → host), cross-rack pairs 4 (via aggregation). With one rack — the CCT
// configuration — every distinct pair is 2 hops.
type Dedicated struct {
	nodes    int
	rackSize int
	rtt      stats.Dist
}

// NewDedicated builds a dedicated topology. rackSize <= 0 means a single
// rack holding every node.
func NewDedicated(nodes, rackSize int, rtt stats.Dist) *Dedicated {
	if nodes <= 0 {
		panic(fmt.Sprintf("topology: nodes must be positive, got %d", nodes))
	}
	if rackSize <= 0 {
		rackSize = nodes
	}
	return &Dedicated{nodes: nodes, rackSize: rackSize, rtt: rtt}
}

// N implements Topology.
func (d *Dedicated) N() int { return d.nodes }

// Rack implements Topology.
func (d *Dedicated) Rack(n NodeID) int { return int(n) / d.rackSize }

// Hops implements Topology.
func (d *Dedicated) Hops(a, b NodeID) int {
	switch {
	case a == b:
		return 0
	case d.Rack(a) == d.Rack(b):
		return 2
	default:
		return 4
	}
}

// SampleRTT implements Topology.
func (d *Dedicated) SampleRTT(a, b NodeID, g *stats.RNG) float64 {
	if a == b {
		return 0
	}
	v := d.rtt.Sample(g)
	if v < 0 {
		v = 0
	}
	return v
}

// Virtual is a cloud-provider allocation: each node lands in a random rack
// inside a random pod of a three-tier tree (host–ToR–aggregation–core).
// Hop counts: same rack 2, same pod 4, cross-pod 6 — so with many racks
// and few pods the distribution concentrates at 4, reproducing Fig. 1.
type Virtual struct {
	nodes   int
	rackOf  []int
	podOf   []int
	baseRTT stats.Dist // RTT component per pair, before per-hop scaling
	perHop  float64    // additional seconds of RTT per hop beyond 2
}

// VirtualParams configures the random placement of a Virtual topology.
type VirtualParams struct {
	Nodes int
	// Racks is the number of distinct racks the provider may choose from;
	// many more racks than nodes/2 means few same-rack pairs.
	Racks int
	// Pods is the number of aggregation pods racks are spread over; a small
	// number (2–3) keeps most pairs at 4 hops with a 6-hop tail, matching
	// the measured Fig. 1 histogram.
	Pods int
	// RTT is the base per-pair round-trip distribution (heavy-tailed for
	// EC2 per Table I).
	RTT stats.Dist
	// PerHopRTT adds this many seconds per hop beyond two.
	PerHopRTT float64
}

// NewVirtual places nodes using g. The placement is part of the
// experiment's random state: two clusters built with equal seeds are
// identical.
func NewVirtual(p VirtualParams, g *stats.RNG) *Virtual {
	if p.Nodes <= 0 {
		panic(fmt.Sprintf("topology: nodes must be positive, got %d", p.Nodes))
	}
	if p.Racks <= 0 {
		p.Racks = p.Nodes
	}
	if p.Pods <= 0 {
		p.Pods = 1
	}
	v := &Virtual{
		nodes:   p.Nodes,
		rackOf:  make([]int, p.Nodes),
		podOf:   make([]int, p.Nodes),
		baseRTT: p.RTT,
		perHop:  p.PerHopRTT,
	}
	// Assign each rack to a pod deterministically, then each node to a
	// random rack.
	rackPod := make([]int, p.Racks)
	for r := range rackPod {
		rackPod[r] = g.Intn(p.Pods)
	}
	for n := 0; n < p.Nodes; n++ {
		r := g.Intn(p.Racks)
		v.rackOf[n] = r
		v.podOf[n] = rackPod[r]
	}
	return v
}

// N implements Topology.
func (v *Virtual) N() int { return v.nodes }

// Rack implements Topology.
func (v *Virtual) Rack(n NodeID) int { return v.rackOf[n] }

// Pod reports the aggregation pod of a node.
func (v *Virtual) Pod(n NodeID) int { return v.podOf[n] }

// Hops implements Topology.
func (v *Virtual) Hops(a, b NodeID) int {
	switch {
	case a == b:
		return 0
	case v.rackOf[a] == v.rackOf[b]:
		return 2
	case v.podOf[a] == v.podOf[b]:
		return 4
	default:
		return 6
	}
}

// SampleRTT implements Topology.
func (v *Virtual) SampleRTT(a, b NodeID, g *stats.RNG) float64 {
	if a == b {
		return 0
	}
	rtt := v.baseRTT.Sample(g)
	if rtt < 0 {
		rtt = 0
	}
	extra := v.Hops(a, b) - 2
	if extra > 0 {
		rtt += float64(extra) * v.perHop
	}
	return rtt
}

// HopHistogram computes the distribution of hop counts over all unordered
// distinct node pairs — the quantity plotted in Fig. 1.
func HopHistogram(t Topology) *stats.IntCounter {
	var c stats.IntCounter
	n := t.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.Add(t.Hops(NodeID(i), NodeID(j)))
		}
	}
	return &c
}

// AllPairsRTT samples one RTT per ordered distinct pair, reproducing the
// all-to-all ping experiment behind Table I.
func AllPairsRTT(t Topology, g *stats.RNG) []float64 {
	n := t.N()
	out := make([]float64, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			out = append(out, t.SampleRTT(NodeID(i), NodeID(j), g))
		}
	}
	return out
}
