package stats

import (
	"fmt"
	"math/rand"
	"reflect"
	"unsafe"

	"dare/internal/snapshot"
)

// This file gives RNG a direct state image for O(state) checkpoint
// restore. The draws counter alone is not enough to reposition a stream:
// Bool short-circuits p<=0 / p>=1 after counting the draw without
// consuming the underlying generator, so draws and the source position can
// legitimately differ. The image therefore carries both the (seed, draws)
// coordinate and the raw math/rand generator internals (the additive
// lagged-Fibonacci state: tap, feed, vec[607], plus Rand's Read cache).
//
// Those internals are unexported, so they are reached with reflect +
// unsafe. That is deliberately defensive: an init-time self-test proves
// the technique works on the running toolchain, and StateSerializable
// gates the whole state-mode resume path — an unsupported runtime falls
// back to replay-from-genesis rather than silently mis-restoring.

// rngVecLen is math/rand's additive-generator state length (rngLen).
const rngVecLen = 607

// rngStateCapable reports whether the init self-test validated direct
// source serialization on this toolchain.
var rngStateCapable = rngStateSelfTest()

// StateSerializable reports whether RNG state images work on this
// runtime. When false, EncodeState returns an error and callers must
// resume by replay instead.
func StateSerializable() bool { return rngStateCapable }

// srcFields locates the addressable reflect.Values of the generator
// internals behind g.r: the rngSource struct and Rand's readVal/readPos
// Read-cache fields.
func srcFields(r *rand.Rand) (src, readVal, readPos reflect.Value, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("stats: rng source access panicked: %v", p)
		}
	}()
	rv := reflect.ValueOf(r).Elem()
	f := rv.FieldByName("src")
	if !f.IsValid() {
		return src, readVal, readPos, fmt.Errorf("stats: rand.Rand has no src field")
	}
	// The field is unexported; rebuild an addressable, writable view of it.
	f = reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem()
	sv := reflect.ValueOf(f.Interface())
	if sv.Kind() != reflect.Pointer || sv.IsNil() || sv.Elem().Kind() != reflect.Struct {
		return src, readVal, readPos, fmt.Errorf("stats: rand source is not a struct pointer")
	}
	src = sv.Elem()
	tap, feed, vec := src.FieldByName("tap"), src.FieldByName("feed"), src.FieldByName("vec")
	if !tap.IsValid() || !feed.IsValid() || !vec.IsValid() ||
		vec.Kind() != reflect.Array || vec.Len() != rngVecLen {
		return src, readVal, readPos, fmt.Errorf("stats: rand source shape unexpected")
	}
	readVal = rv.FieldByName("readVal")
	readPos = rv.FieldByName("readPos")
	if !readVal.IsValid() || !readPos.IsValid() {
		return src, readVal, readPos, fmt.Errorf("stats: rand.Rand read-cache fields missing")
	}
	return src, readVal, readPos, nil
}

// setUnexported writes v into an unexported but addressable struct field.
func setUnexported(f reflect.Value, v int64) {
	reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem().SetInt(v)
}

// readUnexported reads an unexported struct field as int64.
func readUnexported(f reflect.Value) int64 {
	return reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem().Int()
}

// Image forms: a fresh stream (zero draws, source untouched) needs only
// its seed; a used one carries the full generator state.
const (
	rngImageFresh = 0
	rngImageFull  = 1
)

// EncodeState appends the stream's full state image.
func (g *RNG) EncodeState(e *snapshot.Enc) error {
	e.U64(g.seed)
	e.U64(g.draws)
	if g.draws == 0 {
		// draws==0 implies the source was never advanced: rebuildable
		// from the seed alone, saving ~5 KiB per untouched stream.
		e.U8(rngImageFresh)
		return nil
	}
	if !rngStateCapable {
		return fmt.Errorf("stats: rng state images unsupported on this runtime")
	}
	e.U8(rngImageFull)
	src, readVal, readPos, err := srcFields(g.r)
	if err != nil {
		return err
	}
	e.I64(readUnexported(src.FieldByName("tap")))
	e.I64(readUnexported(src.FieldByName("feed")))
	vec := src.FieldByName("vec")
	for i := 0; i < rngVecLen; i++ {
		e.I64(readUnexported(vec.Index(i)))
	}
	e.I64(readUnexported(readVal))
	e.I64(readUnexported(readPos))
	return nil
}

// DecodeState restores the stream from an image written by EncodeState,
// replacing g's seed, position, and generator internals.
func (g *RNG) DecodeState(d *snapshot.Dec) error {
	seed := d.U64()
	draws := d.U64()
	form := d.U8()
	if d.Err() != nil {
		return d.Err()
	}
	fresh := NewRNG(seed)
	switch form {
	case rngImageFresh:
		*g = *fresh
		g.draws = draws
		return nil
	case rngImageFull:
		if !rngStateCapable {
			return fmt.Errorf("stats: rng state images unsupported on this runtime")
		}
		src, readVal, readPos, err := srcFields(fresh.r)
		if err != nil {
			return err
		}
		setUnexported(src.FieldByName("tap"), d.I64())
		setUnexported(src.FieldByName("feed"), d.I64())
		vec := src.FieldByName("vec")
		for i := 0; i < rngVecLen; i++ {
			setUnexported(vec.Index(i), d.I64())
		}
		setUnexported(readVal, d.I64())
		setUnexported(readPos, d.I64())
		if d.Err() != nil {
			return d.Err()
		}
		*g = *fresh
		g.seed = seed
		g.draws = draws
		return nil
	default:
		return fmt.Errorf("stats: unknown rng image form %d", form)
	}
}

// rngStateSelfTest proves on this exact toolchain that a used stream
// round-trips through its state image and then produces the identical
// continuation across every draw kind the simulator uses.
func rngStateSelfTest() (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	a := NewRNG(0xD15EA5E)
	for i := 0; i < 7; i++ {
		a.Float64()
		a.NormFloat64()
		a.ExpFloat64()
		a.Intn(1000)
		a.Bool(0.5)
		a.Bool(-1) // counted but not consumed: draws and position diverge
		a.Bool(2)
	}
	// Encode a's state the same way EncodeState does, bypassing the
	// capability gate (which this test is computing).
	e := snapshot.NewEnc()
	e.U64(a.seed)
	e.U64(a.draws)
	e.U8(rngImageFull)
	src, readVal, readPos, err := srcFields(a.r)
	if err != nil {
		return false
	}
	e.I64(readUnexported(src.FieldByName("tap")))
	e.I64(readUnexported(src.FieldByName("feed")))
	vec := src.FieldByName("vec")
	for i := 0; i < rngVecLen; i++ {
		e.I64(readUnexported(vec.Index(i)))
	}
	e.I64(readUnexported(readVal))
	e.I64(readUnexported(readPos))

	b := NewRNG(1)
	d := snapshot.NewDec(e.Data())
	seed, draws, form := d.U64(), d.U64(), d.U8()
	if form != rngImageFull {
		return false
	}
	fresh := NewRNG(seed)
	bsrc, brv, brp, err := srcFields(fresh.r)
	if err != nil {
		return false
	}
	setUnexported(bsrc.FieldByName("tap"), d.I64())
	setUnexported(bsrc.FieldByName("feed"), d.I64())
	bvec := bsrc.FieldByName("vec")
	for i := 0; i < rngVecLen; i++ {
		setUnexported(bvec.Index(i), d.I64())
	}
	setUnexported(brv, d.I64())
	setUnexported(brp, d.I64())
	if d.Err() != nil {
		return false
	}
	*b = *fresh
	b.seed, b.draws = seed, draws

	if a.draws != b.draws || a.seed != b.seed {
		return false
	}
	for i := 0; i < 64; i++ {
		if a.Float64() != b.Float64() || a.Int63() != b.Int63() ||
			a.NormFloat64() != b.NormFloat64() || a.Bool(0.3) != b.Bool(0.3) {
			return false
		}
	}
	return a.draws == b.draws
}
