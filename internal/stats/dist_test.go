package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleN(d Dist, g *RNG, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(g)
	}
	return xs
}

func TestConstant(t *testing.T) {
	g := NewRNG(1)
	c := Constant{V: 3.5}
	for i := 0; i < 10; i++ {
		if c.Sample(g) != 3.5 {
			t.Fatal("Constant returned non-constant value")
		}
	}
	if c.Mean() != 3.5 {
		t.Fatal("Constant mean mismatch")
	}
}

func TestUniformMoments(t *testing.T) {
	g := NewRNG(2)
	u := Uniform{Lo: 2, Hi: 6}
	s := Summarize(sampleN(u, g, 50000))
	if math.Abs(s.Mean-4) > 0.05 {
		t.Fatalf("uniform mean %v, want ~4", s.Mean)
	}
	if s.Min < 2 || s.Max >= 6 {
		t.Fatalf("uniform out of range: [%v, %v]", s.Min, s.Max)
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(3)
	e := Exponential{Lambda: 0.5}
	s := Summarize(sampleN(e, g, 100000))
	if math.Abs(s.Mean-2) > 0.05 {
		t.Fatalf("exponential mean %v, want ~2", s.Mean)
	}
	if e.Mean() != 2 {
		t.Fatalf("Mean() = %v, want 2", e.Mean())
	}
}

func TestNormalTruncation(t *testing.T) {
	g := NewRNG(4)
	n := Normal{Mu: 157.8, Sigma: 8.02, Min: 145.3, Max: 167.0}
	for i := 0; i < 10000; i++ {
		v := n.Sample(g)
		if v < 145.3 || v > 167.0 {
			t.Fatalf("truncated normal escaped bounds: %v", v)
		}
	}
}

func TestNormalUntruncatedMoments(t *testing.T) {
	g := NewRNG(5)
	n := Normal{Mu: 10, Sigma: 2}
	s := Summarize(sampleN(n, g, 100000))
	if math.Abs(s.Mean-10) > 0.05 || math.Abs(s.Std-2) > 0.05 {
		t.Fatalf("normal moments mean=%v std=%v, want 10/2", s.Mean, s.Std)
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	// Table II EC2 disk bandwidth: mean 141.5, sd 74.2.
	ln := LogNormalFromMoments(141.5, 74.2)
	g := NewRNG(6)
	s := Summarize(sampleN(ln, g, 200000))
	if math.Abs(s.Mean-141.5) > 2.5 {
		t.Fatalf("lognormal mean %v, want ~141.5", s.Mean)
	}
	if math.Abs(s.Std-74.2) > 4 {
		t.Fatalf("lognormal std %v, want ~74.2", s.Std)
	}
	if math.Abs(ln.Mean()-141.5) > 1e-6 {
		t.Fatalf("analytic mean %v, want 141.5", ln.Mean())
	}
}

func TestLogNormalFromMomentsPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mean <= 0")
		}
	}()
	LogNormalFromMoments(0, 1)
}

func TestParetoTail(t *testing.T) {
	g := NewRNG(7)
	p := Pareto{Xm: 1, Alpha: 2}
	s := Summarize(sampleN(p, g, 200000))
	if s.Min < 1 {
		t.Fatalf("pareto sample below scale: %v", s.Min)
	}
	if math.Abs(s.Mean-2) > 0.1 {
		t.Fatalf("pareto mean %v, want ~2", s.Mean)
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 1}.Mean(), 1) {
		t.Fatal("pareto alpha<=1 should have infinite mean")
	}
}

func TestBoundedParetoRange(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewRNG(seed)
		b := BoundedPareto{L: 1, H: 100, Alpha: 1.2}
		for i := 0; i < 100; i++ {
			v := b.Sample(g)
			if v < 1-1e-9 || v > 100+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedParetoMeanMatchesEmpirical(t *testing.T) {
	g := NewRNG(8)
	b := BoundedPareto{L: 2, H: 64, Alpha: 1.5}
	s := Summarize(sampleN(b, g, 300000))
	if math.Abs(s.Mean-b.Mean())/b.Mean() > 0.03 {
		t.Fatalf("bounded pareto empirical mean %v vs analytic %v", s.Mean, b.Mean())
	}
}

func TestMixtureWeights(t *testing.T) {
	g := NewRNG(9)
	m := Mixture{
		Weights:    []float64{3, 1},
		Components: []Dist{Constant{V: 0}, Constant{V: 1}},
	}
	var ones int
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Sample(g) == 1 {
			ones++
		}
	}
	p := float64(ones) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("mixture picked second component %v of the time, want ~0.25", p)
	}
	if math.Abs(m.Mean()-0.25) > 1e-12 {
		t.Fatalf("mixture mean %v, want 0.25", m.Mean())
	}
}

func TestZipfBasics(t *testing.T) {
	z := NewZipf(100, 1.1, 0)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	if z.CDF(100) != 1 {
		t.Fatalf("CDF(N) = %v, want 1", z.CDF(100))
	}
	if z.CDF(0) != 0 {
		t.Fatal("CDF(0) should be 0")
	}
	if z.Prob(1) <= z.Prob(2) {
		t.Fatal("rank 1 should be more probable than rank 2")
	}
	var sum float64
	for k := 1; k <= 100; k++ {
		sum += z.Prob(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestZipfSamplingSkew(t *testing.T) {
	z := NewZipf(1000, 1.2, 0)
	g := NewRNG(10)
	var counter IntCounter
	for i := 0; i < 200000; i++ {
		counter.Add(z.Rank(g))
	}
	// Empirical frequency of rank 1 should be within 10% of theory.
	emp := counter.Fraction(1)
	theory := z.Prob(1)
	if math.Abs(emp-theory)/theory > 0.1 {
		t.Fatalf("rank-1 empirical %v vs theory %v", emp, theory)
	}
	// Heavy tail: the top 10 ranks must dominate the next 990.
	if z.CDF(10) < 0.5 {
		t.Fatalf("top-10 mass %v; expected heavy head for s=1.2", z.CDF(10))
	}
}

func TestZipfRankInRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewRNG(seed)
		z := NewZipf(37, 0.9, 1.5)
		for i := 0; i < 200; i++ {
			r := z.Rank(g)
			if r < 1 || r > 37 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfCDFMonotone(t *testing.T) {
	z := NewZipf(64, 1.0, 0.5)
	prev := 0.0
	for k := 1; k <= 64; k++ {
		c := z.CDF(k)
		if c < prev {
			t.Fatalf("CDF not monotone at rank %d: %v < %v", k, c, prev)
		}
		prev = c
	}
}

func TestZipfPanicsOnInvalidN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 1")
		}
	}()
	NewZipf(0, 1, 0)
}
