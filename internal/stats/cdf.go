package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. It backs the paper's CDF figures (Fig. 3 age-at-access, Fig. 6
// access pattern) and the locality/TT distribution reporting.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts xs. An empty sample is allowed; all queries on
// it return NaN.
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N reports the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At reports P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile reports the smallest x with P(X <= x) >= q.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Points samples the ECDF at n evenly spaced quantiles, returning (x, q)
// pairs suitable for printing a CDF series the way the paper's figures do.
func (e *ECDF) Points(n int) []CDFPoint {
	if n < 2 || len(e.sorted) == 0 {
		return nil
	}
	pts := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		pts[i] = CDFPoint{X: e.Quantile(q), P: q}
	}
	return pts
}

// CDFPoint is one (x, P(X<=x)) sample of a distribution curve.
type CDFPoint struct {
	X float64
	P float64
}

// DiscreteCDF is an inverse-transform sampler over n categories defined by
// explicit cumulative probabilities. The workload generator uses it to
// reproduce the exact access-pattern CDF of Fig. 6.
type DiscreteCDF struct {
	cum []float64
}

// NewDiscreteCDF validates and wraps cumulative probabilities. cum must be
// non-decreasing, within [0,1], and end at 1 (within 1e-9, then snapped).
func NewDiscreteCDF(cum []float64) (*DiscreteCDF, error) {
	if len(cum) == 0 {
		return nil, fmt.Errorf("stats: empty CDF")
	}
	prev := 0.0
	for i, c := range cum {
		if c < prev-1e-12 {
			return nil, fmt.Errorf("stats: CDF not monotone at index %d (%v < %v)", i, c, prev)
		}
		if c < 0 || c > 1+1e-9 {
			return nil, fmt.Errorf("stats: CDF value out of range at index %d: %v", i, c)
		}
		prev = c
	}
	if math.Abs(cum[len(cum)-1]-1) > 1e-9 {
		return nil, fmt.Errorf("stats: CDF must end at 1, ends at %v", cum[len(cum)-1])
	}
	c := make([]float64, len(cum))
	copy(c, cum)
	c[len(c)-1] = 1
	return &DiscreteCDF{cum: c}, nil
}

// NewDiscreteCDFFromWeights normalizes non-negative weights into a CDF.
func NewDiscreteCDFFromWeights(weights []float64) (*DiscreteCDF, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("stats: empty weights")
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("stats: negative weight at index %d: %v", i, w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("stats: all weights are zero")
	}
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w
		cum[i] = acc / total
	}
	cum[len(cum)-1] = 1
	return &DiscreteCDF{cum: cum}, nil
}

// N reports the number of categories.
func (d *DiscreteCDF) N() int { return len(d.cum) }

// Sample draws a category index in [0, N).
func (d *DiscreteCDF) Sample(g *RNG) int {
	u := g.Float64()
	return sort.SearchFloat64s(d.cum, u)
}

// At reports the cumulative probability of categories [0..i].
func (d *DiscreteCDF) At(i int) float64 {
	if i < 0 {
		return 0
	}
	if i >= len(d.cum) {
		return 1
	}
	return d.cum[i]
}

// Prob reports the probability of category i.
func (d *DiscreteCDF) Prob(i int) float64 {
	if i < 0 || i >= len(d.cum) {
		return 0
	}
	if i == 0 {
		return d.cum[0]
	}
	return d.cum[i] - d.cum[i-1]
}
