package stats

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestRNGDistinctSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestRNGSplitDeterministic(t *testing.T) {
	a := NewRNG(7).Split(3)
	b := NewRNG(7).Split(3)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("split streams with equal labels diverged at draw %d", i)
		}
	}
}

func TestRNGSplitIndependentLabels(t *testing.T) {
	a := NewRNG(7).Split(1)
	b := NewRNG(7).Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams with different labels matched %d/100 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := g.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	g := NewRNG(99)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if p < 0.28 || p > 0.32 {
		t.Fatalf("Bool(0.3) empirical rate %v out of tolerance", p)
	}
}

func TestSplitmixDecorrelatesAdjacentSeeds(t *testing.T) {
	// Adjacent raw seeds must not produce adjacent internal seeds.
	if splitmix(1) == splitmix(2)+1 || splitmix(1) == splitmix(2) {
		t.Fatal("splitmix failed to decorrelate adjacent seeds")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	g := NewRNG(5)
	p := g.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}
