package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiscreteCDFValidation(t *testing.T) {
	if _, err := NewDiscreteCDF(nil); err == nil {
		t.Fatal("empty CDF should fail")
	}
	if _, err := NewDiscreteCDF([]float64{0.5, 0.3, 1}); err == nil {
		t.Fatal("non-monotone CDF should fail")
	}
	if _, err := NewDiscreteCDF([]float64{0.5, 0.9}); err == nil {
		t.Fatal("CDF not ending at 1 should fail")
	}
	if _, err := NewDiscreteCDF([]float64{0.2, 0.7, 1.0}); err != nil {
		t.Fatalf("valid CDF rejected: %v", err)
	}
}

func TestDiscreteCDFFromWeights(t *testing.T) {
	d, err := NewDiscreteCDFFromWeights([]float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Prob(2)-0.5) > 1e-12 {
		t.Fatalf("Prob(2) = %v, want 0.5", d.Prob(2))
	}
	if d.At(2) != 1 {
		t.Fatalf("At(last) = %v", d.At(2))
	}
	if _, err := NewDiscreteCDFFromWeights([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights should fail")
	}
	if _, err := NewDiscreteCDFFromWeights([]float64{1, -1}); err == nil {
		t.Fatal("negative weight should fail")
	}
}

func TestDiscreteCDFSampleFrequencies(t *testing.T) {
	d, err := NewDiscreteCDFFromWeights([]float64{7, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(13)
	var c IntCounter
	const n = 100000
	for i := 0; i < n; i++ {
		c.Add(d.Sample(g))
	}
	if math.Abs(c.Fraction(0)-0.7) > 0.01 {
		t.Fatalf("category 0 frequency %v, want ~0.7", c.Fraction(0))
	}
	if math.Abs(c.Fraction(2)-0.1) > 0.01 {
		t.Fatalf("category 2 frequency %v, want ~0.1", c.Fraction(2))
	}
}

func TestDiscreteCDFSampleInRangeProperty(t *testing.T) {
	f := func(seed uint64, nCat uint8) bool {
		n := int(nCat%20) + 1
		w := make([]float64, n)
		g := NewRNG(seed)
		for i := range w {
			w[i] = g.Float64() + 0.01
		}
		d, err := NewDiscreteCDFFromWeights(w)
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			s := d.Sample(g)
			if s < 0 || s >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps to first bin
	h.Add(50) // clamps to last bin
	if h.Total() != 12 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Count(0) != 2 || h.Count(9) != 2 {
		t.Fatalf("edge clamping failed: first=%d last=%d", h.Count(0), h.Count(9))
	}
	if h.BinCenter(0) != 0.5 {
		t.Fatalf("bin center %v", h.BinCenter(0))
	}
	var sum float64
	for i := 0; i < h.Bins(); i++ {
		sum += h.Fraction(i)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestIntCounter(t *testing.T) {
	var c IntCounter
	c.Add(3)
	c.Add(3)
	c.Add(0)
	c.Add(-1) // clamped to 0
	if c.Count(3) != 2 || c.Count(0) != 2 {
		t.Fatalf("counts wrong: %d %d", c.Count(3), c.Count(0))
	}
	if c.Max() != 3 {
		t.Fatalf("max %d", c.Max())
	}
	if c.Fraction(3) != 0.5 {
		t.Fatalf("fraction %v", c.Fraction(3))
	}
	if c.Count(99) != 0 {
		t.Fatal("out-of-range count should be 0")
	}
}

func TestIntCounterEmptyFraction(t *testing.T) {
	var c IntCounter
	if c.Fraction(0) != 0 {
		t.Fatal("empty counter fraction should be 0")
	}
	if c.Max() != -1 {
		t.Fatalf("empty counter Max = %d, want -1", c.Max())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(0.5)
	h.Add(2.5)
	if out := h.String(); len(out) == 0 {
		t.Fatal("empty histogram rendering")
	}
}

func TestECDFPointsEdgeCases(t *testing.T) {
	if pts := NewECDF(nil).Points(10); pts != nil {
		t.Fatal("empty ECDF should yield nil points")
	}
	if pts := NewECDF([]float64{1, 2}).Points(1); pts != nil {
		t.Fatal("n<2 should yield nil points")
	}
}

func TestSummaryStringFormat(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if out := s.String(); len(out) == 0 {
		t.Fatal("empty summary string")
	}
}
