package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binned counter over [Lo, Hi). Values outside
// the range fall into saturating edge bins. It backs Fig. 1 (hop-count
// distribution) and the burst-window fractions of Figs. 4–5.
type Histogram struct {
	Lo, Hi float64
	counts []int64
	total  int64
	width  float64
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics if bins < 1 or hi <= lo — a configuration bug.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) bins=%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, counts: make([]int64, bins), width: (hi - lo) / float64(bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(math.Floor((x - h.Lo) / h.width))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Bins reports the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count reports the raw count in bin i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Total reports the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Fraction reports the proportion of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// BinCenter reports the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.width
}

// String renders a compact ASCII table (bin center, fraction) used by the
// CLI tools when printing distribution figures.
func (h *Histogram) String() string {
	var b strings.Builder
	for i := range h.counts {
		fmt.Fprintf(&b, "%8.2f %6.4f\n", h.BinCenter(i), h.Fraction(i))
	}
	return b.String()
}

// IntCounter counts occurrences of small non-negative integers (hop
// counts, replica counts). It grows on demand.
type IntCounter struct {
	counts []int64
	total  int64
}

// Add records one occurrence of v (negative values are clamped to 0).
func (c *IntCounter) Add(v int) {
	if v < 0 {
		v = 0
	}
	for v >= len(c.counts) {
		c.counts = append(c.counts, 0)
	}
	c.counts[v]++
	c.total++
}

// Max reports the largest recorded value (or -1 when empty).
func (c *IntCounter) Max() int { return len(c.counts) - 1 }

// Count reports occurrences of v.
func (c *IntCounter) Count(v int) int64 {
	if v < 0 || v >= len(c.counts) {
		return 0
	}
	return c.counts[v]
}

// Total reports the number of observations.
func (c *IntCounter) Total() int64 { return c.total }

// Fraction reports the proportion of observations equal to v.
func (c *IntCounter) Fraction(v int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.Count(v)) / float64(c.total)
}
