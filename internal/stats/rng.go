// Package stats provides the statistical building blocks used throughout the
// DARE reproduction: seeded random-number streams, the heavy-tailed
// distributions that drive workload synthesis (Zipf, Pareto, log-normal),
// empirical summaries (mean, deviation, coefficient of variation, geometric
// mean, percentiles), and cumulative-distribution utilities.
//
// Every consumer of randomness in the simulator owns a *stats.RNG derived
// from a master seed, so a whole experiment is a pure function of
// (configuration, seed). That determinism is what the test suite and the
// benchmark harness rely on to produce stable tables.
package stats

import "math/rand"

// RNG is a deterministic random stream. It thinly wraps math/rand.Rand so
// that call sites do not accidentally reach for the shared global source,
// and so sub-streams can be split off reproducibly.
type RNG struct {
	r *rand.Rand
	// seed records the stream's origin; useful in error messages and for
	// splitting sub-streams.
	seed uint64
	// draws counts calls that consumed (or could consume) the underlying
	// stream. (seed, draws) is the stream's checkpoint coordinate: a
	// resumed run must show every RNG at the same position, which is how
	// divergence in any random draw anywhere surfaces in the state
	// fingerprint.
	draws uint64
}

// NewRNG returns a deterministic stream for the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(int64(splitmix(seed)))), seed: seed}
}

// Split derives an independent sub-stream identified by label. Splitting is
// deterministic: the same (seed, label) always yields the same stream, and
// distinct labels yield streams that are uncorrelated for practical
// purposes (splitmix64 finalizer mixing).
func (g *RNG) Split(label uint64) *RNG {
	return NewRNG(splitmix(g.seed ^ (label*0x9E3779B97F4A7C15 + 0x85EBCA6B)))
}

// Seed reports the seed this stream was created with.
func (g *RNG) Seed() uint64 { return g.seed }

// Draws reports how many draw calls the stream has served — its position
// for checkpoint fingerprinting.
func (g *RNG) Draws() uint64 { return g.draws }

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { g.draws++; return g.r.Float64() }

// Intn returns a uniform integer in [0,n). It panics if n <= 0, matching
// math/rand semantics.
func (g *RNG) Intn(n int) int { g.draws++; return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { g.draws++; return g.r.Int63() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { g.draws++; return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (g *RNG) ExpFloat64() float64 { g.draws++; return g.r.ExpFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { g.draws++; return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.draws++; g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	g.draws++
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// splitmix is the splitmix64 finalizer; it decorrelates nearby seeds so
// that seed, seed+1, ... produce unrelated streams.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
