package stats

import "testing"

func BenchmarkZipfRank(b *testing.B) {
	z := NewZipf(10000, 1.2, 0)
	g := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Rank(g)
	}
}

func BenchmarkLogNormalSample(b *testing.B) {
	d := LogNormalFromMoments(141.5, 74.2)
	g := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(g)
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	g := NewRNG(1)
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = g.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i&1023])
	}
}

func BenchmarkECDFAt(b *testing.B) {
	g := NewRNG(1)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = g.Float64()
	}
	e := NewECDF(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(0.5)
	}
}

func BenchmarkDiscreteCDFSample(b *testing.B) {
	w := make([]float64, 1000)
	for i := range w {
		w[i] = 1 / float64(i+1)
	}
	d, err := NewDiscreteCDFFromWeights(w)
	if err != nil {
		b.Fatal(err)
	}
	g := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(g)
	}
}
