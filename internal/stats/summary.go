package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics the paper reports in its tables
// (Tables I and II give min/mean/max/σ) plus the derived quantities used in
// the evaluation (coefficient of variation for Fig. 11, geometric mean for
// GMTT).
type Summary struct {
	N              int
	Min, Max       float64
	Mean, Std      float64
	GeoMean        float64
	sum, sumSq     float64
	logSum         float64
	nonPositiveLog bool
}

// Summarize computes a Summary over xs. An empty slice yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	s.Finalize()
	return s
}

// Add accumulates one observation. Call Finalize before reading the derived
// fields.
func (s *Summary) Add(x float64) {
	if s.N == 0 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.N++
	s.sum += x
	s.sumSq += x * x
	if x > 0 {
		s.logSum += math.Log(x)
	} else {
		s.nonPositiveLog = true
	}
}

// Finalize computes Mean, Std and GeoMean from the accumulated
// observations. It is idempotent.
func (s *Summary) Finalize() {
	if s.N == 0 {
		return
	}
	n := float64(s.N)
	s.Mean = s.sum / n
	// Population variance; guard tiny negatives from float cancellation.
	v := s.sumSq/n - s.Mean*s.Mean
	if v < 0 {
		v = 0
	}
	s.Std = math.Sqrt(v)
	if s.nonPositiveLog {
		s.GeoMean = math.NaN()
	} else {
		s.GeoMean = math.Exp(s.logSum / n)
	}
}

// CV reports the coefficient of variation σ/|μ| (paper §V-A, Fig. 11).
// It returns NaN when the mean is zero.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return math.NaN()
	}
	return s.Std / math.Abs(s.Mean)
}

// String renders the summary in the min/mean/max/σ layout of the paper's
// Tables I and II.
func (s Summary) String() string {
	return fmt.Sprintf("min=%.2f mean=%.2f max=%.2f std=%.2f (n=%d)", s.Min, s.Mean, s.Max, s.Std, s.N)
}

// GeometricMean computes the geometric mean of xs, the aggregation the
// paper uses for turnaround time (GMTT, eq. 1). It returns NaN if any
// observation is non-positive or the slice is empty.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Mean computes the arithmetic mean of xs (NaN when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q)
}

func percentileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CoefficientOfVariation is a convenience over Summarize(xs).CV().
func CoefficientOfVariation(xs []float64) float64 {
	return Summarize(xs).CV()
}
