package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Fatalf("mean %v", s.Mean)
	}
	wantStd := math.Sqrt(1.25) // population std of 1..4
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, wantStd)
	}
	wantGM := math.Pow(24, 0.25)
	if math.Abs(s.GeoMean-wantGM) > 1e-12 {
		t.Fatalf("geomean %v, want %v", s.GeoMean, wantGM)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("expected empty summary, got %+v", s)
	}
}

func TestSummaryCV(t *testing.T) {
	s := Summarize([]float64{10, 10, 10})
	if s.CV() != 0 {
		t.Fatalf("constant sample should have CV 0, got %v", s.CV())
	}
	z := Summarize([]float64{-1, 1})
	if !math.IsNaN(z.CV()) {
		t.Fatalf("zero-mean CV should be NaN, got %v", z.CV())
	}
}

func TestGeometricMean(t *testing.T) {
	if g := GeometricMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GM(1,4) = %v, want 2", g)
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Fatal("GM of empty should be NaN")
	}
	if !math.IsNaN(GeometricMean([]float64{1, 0})) {
		t.Fatal("GM with zero should be NaN")
	}
}

func TestGeometricMeanBoundsProperty(t *testing.T) {
	// min <= GM <= max, and GM <= AM for positive samples.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		gm := GeometricMean(xs)
		s := Summarize(xs)
		const eps = 1e-9
		return gm >= s.Min-eps && gm <= s.Max+eps && gm <= s.Mean+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 1); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 0.5); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(xs, 0.25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("percentile of empty should be NaN")
	}
	// Percentile must not reorder its input.
	if xs[0] != 5 || xs[4] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Percentile(raw, qa) <= Percentile(raw, qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryIncrementalMatchesBatch(t *testing.T) {
	g := NewRNG(11)
	xs := sampleN(Uniform{Lo: 0, Hi: 100}, g, 1000)
	var inc Summary
	for _, x := range xs {
		inc.Add(x)
	}
	inc.Finalize()
	batch := Summarize(xs)
	if inc.Mean != batch.Mean || inc.Std != batch.Std || inc.Min != batch.Min || inc.Max != batch.Max {
		t.Fatalf("incremental %+v != batch %+v", inc, batch)
	}
}

func TestMeanHelper(t *testing.T) {
	if m := Mean([]float64{2, 4, 6}); m != 4 {
		t.Fatalf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean of empty should be NaN")
	}
}

func TestECDFQuantileRoundTrip(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	e := NewECDF(xs)
	for _, x := range xs {
		q := e.At(x)
		if got := e.Quantile(q); got > x {
			t.Fatalf("Quantile(At(%v)) = %v exceeds input", x, got)
		}
	}
	if e.At(9) != 0 {
		t.Fatalf("At(9) = %v, want 0", e.At(9))
	}
	if e.At(50) != 1 {
		t.Fatalf("At(50) = %v, want 1", e.At(50))
	}
}

func TestECDFPointsMonotone(t *testing.T) {
	g := NewRNG(12)
	e := NewECDF(sampleN(Exponential{Lambda: 1}, g, 500))
	pts := e.Points(21)
	if len(pts) != 21 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].P < pts[i-1].P {
			t.Fatalf("non-monotone CDF points at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestECDFAgainstSorted(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		e := NewECDF(raw)
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		// The median element must have At >= 0.5.
		mid := sorted[(len(sorted)-1)/2]
		return e.At(mid) >= 0.5-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
