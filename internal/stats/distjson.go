package stats

import (
	"encoding/json"
	"fmt"
)

// DistJSON wraps a Dist for exact JSON round-tripping as a typed union:
// {"kind": "uniform", "lo": 1, "hi": 2}. Every concrete Dist in this
// package is covered; parameters are carried verbatim (Go's float64 JSON
// encoding is shortest-round-trip, so decoding restores the identical bit
// pattern). The checkpoint spec (internal/runner) leans on exactness: a
// resumed run rebuilt from a spec must draw the same variates, so
// distributions are never re-fit from moments — they are transcribed.
type DistJSON struct{ Dist }

// distNode is the wire form: a kind tag plus the union of all parameter
// fields. omitempty would corrupt legitimate zero parameters (e.g.
// Uniform{Lo: 0}), so each kind writes its own explicit object instead.
type distNode struct {
	Kind string `json:"kind"`

	V      *float64 `json:"v,omitempty"`
	Lo     *float64 `json:"lo,omitempty"`
	Hi     *float64 `json:"hi,omitempty"`
	Lambda *float64 `json:"lambda,omitempty"`
	Mu     *float64 `json:"mu,omitempty"`
	Sigma  *float64 `json:"sigma,omitempty"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
	Xm     *float64 `json:"xm,omitempty"`
	Alpha  *float64 `json:"alpha,omitempty"`
	L      *float64 `json:"l,omitempty"`
	H      *float64 `json:"h,omitempty"`

	Weights    []float64  `json:"weights,omitempty"`
	Components []DistJSON `json:"components,omitempty"`
	D          *DistJSON  `json:"d,omitempty"`
}

func fp(v float64) *float64 { return &v }

func deref(p *float64) float64 {
	if p == nil {
		return 0
	}
	return *p
}

// MarshalJSON implements json.Marshaler.
func (d DistJSON) MarshalJSON() ([]byte, error) {
	if d.Dist == nil {
		return []byte("null"), nil
	}
	var n distNode
	switch v := d.Dist.(type) {
	case Constant:
		n = distNode{Kind: "constant", V: fp(v.V)}
	case Uniform:
		n = distNode{Kind: "uniform", Lo: fp(v.Lo), Hi: fp(v.Hi)}
	case Exponential:
		n = distNode{Kind: "exponential", Lambda: fp(v.Lambda)}
	case Normal:
		n = distNode{Kind: "normal", Mu: fp(v.Mu), Sigma: fp(v.Sigma), Min: fp(v.Min), Max: fp(v.Max)}
	case LogNormal:
		n = distNode{Kind: "lognormal", Mu: fp(v.Mu), Sigma: fp(v.Sigma)}
	case Pareto:
		n = distNode{Kind: "pareto", Xm: fp(v.Xm), Alpha: fp(v.Alpha)}
	case BoundedPareto:
		n = distNode{Kind: "boundedpareto", L: fp(v.L), H: fp(v.H), Alpha: fp(v.Alpha)}
	case Mixture:
		n = distNode{Kind: "mixture", Weights: v.Weights}
		for _, c := range v.Components {
			n.Components = append(n.Components, DistJSON{c})
		}
	case Clamped:
		inner := DistJSON{v.D}
		n = distNode{Kind: "clamped", D: &inner, Lo: fp(v.Lo), Hi: fp(v.Hi)}
	default:
		return nil, fmt.Errorf("stats: distribution %T has no JSON form", d.Dist)
	}
	return json.Marshal(n)
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *DistJSON) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		d.Dist = nil
		return nil
	}
	var n distNode
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	switch n.Kind {
	case "constant":
		d.Dist = Constant{V: deref(n.V)}
	case "uniform":
		d.Dist = Uniform{Lo: deref(n.Lo), Hi: deref(n.Hi)}
	case "exponential":
		d.Dist = Exponential{Lambda: deref(n.Lambda)}
	case "normal":
		d.Dist = Normal{Mu: deref(n.Mu), Sigma: deref(n.Sigma), Min: deref(n.Min), Max: deref(n.Max)}
	case "lognormal":
		d.Dist = LogNormal{Mu: deref(n.Mu), Sigma: deref(n.Sigma)}
	case "pareto":
		d.Dist = Pareto{Xm: deref(n.Xm), Alpha: deref(n.Alpha)}
	case "boundedpareto":
		d.Dist = BoundedPareto{L: deref(n.L), H: deref(n.H), Alpha: deref(n.Alpha)}
	case "mixture":
		m := Mixture{Weights: n.Weights}
		for _, c := range n.Components {
			m.Components = append(m.Components, c.Dist)
		}
		d.Dist = m
	case "clamped":
		c := Clamped{Lo: deref(n.Lo), Hi: deref(n.Hi)}
		if n.D != nil {
			c.D = n.D.Dist
		}
		d.Dist = c
	default:
		return fmt.Errorf("stats: unknown distribution kind %q", n.Kind)
	}
	return nil
}
