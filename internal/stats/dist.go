package stats

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a real-valued distribution that can be sampled from an RNG.
type Dist interface {
	// Sample draws one variate using g.
	Sample(g *RNG) float64
	// Mean reports the theoretical mean where defined, or an estimate.
	Mean() float64
}

// Constant is the degenerate distribution that always returns V.
type Constant struct{ V float64 }

// Sample implements Dist.
func (c Constant) Sample(*RNG) float64 { return c.V }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.V }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(g *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*g.Float64() }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential has rate Lambda (mean 1/Lambda).
type Exponential struct{ Lambda float64 }

// Sample implements Dist.
func (e Exponential) Sample(g *RNG) float64 { return g.ExpFloat64() / e.Lambda }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// Normal is the Gaussian distribution with the given Mu and Sigma,
// optionally truncated to [Min, Max] when Max > Min (both zero disables
// truncation). Truncation is by resampling with a rejection cap, falling
// back to clamping; the bias is negligible for the mild truncations used
// here (e.g. Table II's disk-bandwidth ranges).
type Normal struct {
	Mu, Sigma float64
	Min, Max  float64
}

// Sample implements Dist.
func (n Normal) Sample(g *RNG) float64 {
	v := n.Mu + n.Sigma*g.NormFloat64()
	if n.Max > n.Min {
		for i := 0; i < 64 && (v < n.Min || v > n.Max); i++ {
			v = n.Mu + n.Sigma*g.NormFloat64()
		}
		v = math.Max(n.Min, math.Min(n.Max, v))
	}
	return v
}

// Mean implements Dist. For truncated normals this is the untruncated mean,
// which is accurate when the truncation is roughly symmetric.
func (n Normal) Mean() float64 { return n.Mu }

// LogNormal is parameterized by the location Mu and scale Sigma of the
// underlying normal; exp(N(Mu, Sigma)) — the canonical heavy-ish tail for
// service times and EC2 performance jitter.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormal) Sample(g *RNG) float64 { return math.Exp(l.Mu + l.Sigma*g.NormFloat64()) }

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// LogNormalFromMoments builds a LogNormal whose mean and standard deviation
// match the given (positive) empirical moments. This is how Table II's
// measured bandwidth summaries become samplable models.
func LogNormalFromMoments(mean, sd float64) LogNormal {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: LogNormalFromMoments requires mean > 0, got %v", mean))
	}
	cv2 := (sd * sd) / (mean * mean)
	sigma2 := math.Log(1 + cv2)
	return LogNormal{Mu: math.Log(mean) - sigma2/2, Sigma: math.Sqrt(sigma2)}
}

// Pareto is the (Type I) Pareto distribution with scale Xm and shape Alpha.
// For Alpha <= 1 the mean is infinite; Mean reports +Inf in that case.
type Pareto struct{ Xm, Alpha float64 }

// Sample implements Dist.
func (p Pareto) Sample(g *RNG) float64 {
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean implements Dist.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// BoundedPareto truncates a Pareto(Xm=L, Alpha) to [L, H]; used for file
// sizes and RTT outliers where physical bounds exist.
type BoundedPareto struct{ L, H, Alpha float64 }

// Sample implements Dist (inverse transform of the truncated CDF).
func (b BoundedPareto) Sample(g *RNG) float64 {
	u := g.Float64()
	la := math.Pow(b.L, b.Alpha)
	ha := math.Pow(b.H, b.Alpha)
	x := -(u*ha - u*la - ha) / (ha * la)
	return math.Pow(x, -1/b.Alpha)
}

// Mean implements Dist.
func (b BoundedPareto) Mean() float64 {
	a := b.Alpha
	if a == 1 {
		return b.L * b.H / (b.H - b.L) * math.Log(b.H/b.L)
	}
	la := math.Pow(b.L, a)
	ha := math.Pow(b.H, a)
	return la / (1 - la/ha) * a / (a - 1) * (1/math.Pow(b.L, a-1) - 1/math.Pow(b.H, a-1))
}

// Mixture samples from Components[i] with probability Weights[i]. Weights
// need not be normalized.
type Mixture struct {
	Weights    []float64
	Components []Dist
}

// Sample implements Dist.
func (m Mixture) Sample(g *RNG) float64 {
	return m.Components[m.pick(g)].Sample(g)
}

func (m Mixture) pick(g *RNG) int {
	var total float64
	for _, w := range m.Weights {
		total += w
	}
	u := g.Float64() * total
	for i, w := range m.Weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(m.Weights) - 1
}

// Mean implements Dist.
func (m Mixture) Mean() float64 {
	var total, acc float64
	for i, w := range m.Weights {
		total += w
		acc += w * m.Components[i].Mean()
	}
	return acc / total
}

// Clamped restricts another distribution to [Lo, Hi] by clamping samples.
// It models physically bounded measurements (e.g. Table II's bandwidth
// ranges) without distorting the body of the distribution.
type Clamped struct {
	D      Dist
	Lo, Hi float64
}

// Sample implements Dist.
func (c Clamped) Sample(g *RNG) float64 {
	v := c.D.Sample(g)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Mean implements Dist (the inner mean; accurate when clamping is rare).
func (c Clamped) Mean() float64 { return c.D.Mean() }

// Zipf is a finite Zipf(-Mandelbrot when Q > 0) distribution over ranks
// 1..N with exponent S: P(rank k) proportional to 1/(k+Q)^S. It is the
// paper's model for file popularity (heavy-tailed rank curve of Fig. 2) and
// the access pattern of Fig. 6.
type Zipf struct {
	n   int
	s   float64
	q   float64
	cdf []float64 // cdf[k] = P(rank <= k+1), normalized, monotone
}

// NewZipf precomputes the normalized CDF for ranks 1..n. It panics on
// invalid parameters (n < 1) because such a configuration is a programming
// error, not a runtime condition.
func NewZipf(n int, s, q float64) *Zipf {
	if n < 1 {
		panic(fmt.Sprintf("stats: NewZipf n must be >= 1, got %d", n))
	}
	z := &Zipf{n: n, s: s, q: q, cdf: make([]float64, n)}
	var total float64
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k)+q, s)
		z.cdf[k-1] = total
	}
	for k := range z.cdf {
		z.cdf[k] /= total
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z
}

// N reports the number of ranks.
func (z *Zipf) N() int { return z.n }

// Rank samples a rank in [1, N], with rank 1 the most probable.
func (z *Zipf) Rank(g *RNG) int {
	u := g.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// Prob reports P(rank = k).
func (z *Zipf) Prob(k int) float64 {
	if k < 1 || k > z.n {
		return 0
	}
	if k == 1 {
		return z.cdf[0]
	}
	return z.cdf[k-1] - z.cdf[k-2]
}

// CDF reports P(rank <= k).
func (z *Zipf) CDF(k int) float64 {
	if k < 1 {
		return 0
	}
	if k > z.n {
		return 1
	}
	return z.cdf[k-1]
}
