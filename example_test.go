package dare_test

import (
	"fmt"
	"log"
	"strings"

	"dare"
)

// The headline usage: replay a Facebook-style workload with and without
// DARE and compare data locality.
func Example() {
	wl := dare.WL1(42)
	wl.Jobs = wl.Jobs[:100] // scaled down so the example runs instantly

	locality := func(kind dare.PolicyKind) float64 {
		out, err := dare.Run(dare.Options{
			Profile:   dare.CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    dare.PolicyFor(kind),
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		return out.Summary.JobLocality
	}

	vanilla := locality(dare.Vanilla)
	withDARE := locality(dare.ElephantTrap)
	fmt.Println("DARE improved locality:", withDARE > vanilla)
	// Output:
	// DARE improved locality: true
}

// Workloads are synthesized statistically; every seed yields a complete,
// validated SWIM-style trace.
func ExampleGenerateWorkload() {
	wl := dare.GenerateWorkload(dare.WorkloadConfig{
		Name:    "demo",
		NumJobs: 50,
		Seed:    7,
	})
	fmt.Println(wl.Name, len(wl.Jobs), "jobs over", len(wl.Files), "files")
	fmt.Println("valid:", wl.Validate() == nil)
	// Output:
	// demo 50 jobs over 120 files
	// valid: true
}

// Custom clusters load from JSON specs — the same format dare-sim's
// -profile-file flag accepts.
func ExampleLoadProfile() {
	spec := `{
	  "name": "lab", "kind": "dedicated", "slaves": 12,
	  "mapSlotsPerNode": 2, "reduceSlotsPerNode": 1,
	  "blockSizeMB": 128, "replicationFactor": 3,
	  "diskBW": {"type": "constant", "value": 300},
	  "netBW": {"type": "constant", "value": 100},
	  "rtt": {"type": "constant", "value": 0.0002}
	}`
	p, err := dare.LoadProfile(strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d slaves, %d MB blocks\n", p.Name, p.Slaves, p.BlockSizeMB)
	// Output:
	// lab: 12 slaves, 128 MB blocks
}

// Audit logs convert directly into replayable workloads, tying the §III
// access characterization to the §V evaluation.
func ExampleWorkloadFromAuditLog() {
	logData := dare.GenerateAuditLog(dare.AuditLogConfig{
		Files:    50,
		Accesses: 2000,
		Seed:     3,
	})
	wl, err := dare.WorkloadFromAuditLog(logData, dare.ReplayConfig{Jobs: 200, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay jobs:", len(wl.Jobs))
	fmt.Println("valid:", wl.Validate() == nil)
	// Output:
	// replay jobs: 200
	// valid: true
}

// The access-pattern CDF of Fig. 6 is available directly.
func ExampleFig6Points() {
	pts := dare.Fig6Points(120, 0)
	fmt.Println("ranks:", len(pts))
	fmt.Println("ends at 1:", pts[len(pts)-1].P == 1)
	// Output:
	// ranks: 120
	// ends at 1: true
}
