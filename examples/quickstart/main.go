// Quickstart: replay the paper's wl1 Facebook-style workload on the
// 20-node CCT cluster profile three times — vanilla Hadoop, DARE with
// greedy LRU eviction, DARE with ElephantTrap eviction — and compare data
// locality, turnaround time, and slowdown (the Fig. 7 comparison in
// miniature).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dare"
)

func main() {
	const seed = 42
	fmt.Println("DARE quickstart: wl1 on the 20-node CCT profile, FIFO scheduler")
	fmt.Println()
	fmt.Printf("%-22s %9s %9s %10s %11s\n", "policy", "locality", "GMTT(s)", "slowdown", "blocks/job")

	var vanillaGMTT float64
	for _, kind := range []dare.PolicyKind{dare.Vanilla, dare.GreedyLRU, dare.ElephantTrap} {
		out, err := dare.Run(dare.Options{
			Profile:   dare.CCT(),
			Workload:  dare.WL1(seed),
			Scheduler: "fifo",
			Policy:    dare.PolicyFor(kind),
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := out.Summary
		fmt.Printf("%-22s %9.3f %9.2f %10.2f %11.2f\n", kind, s.JobLocality, s.GMTT, s.MeanSlowdown, s.BlocksPerJob)
		if kind == dare.Vanilla {
			vanillaGMTT = s.GMTT
		} else {
			fmt.Printf("%22s   -> %.0f%% GMTT reduction vs vanilla\n", "", (vanillaGMTT-s.GMTT)/vanillaGMTT*100)
		}
	}

	fmt.Println()
	fmt.Println("DARE turns the remote reads non-local map tasks already perform into")
	fmt.Println("extra replicas of popular blocks, so the scheduler finds local work far")
	fmt.Println("more often — no extra network traffic is spent creating them.")
}
