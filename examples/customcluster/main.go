// Customcluster: using the library on a cluster the paper never measured.
// A downstream user rarely has the paper's exact testbeds; this example
// defines a 40-node cluster with NVMe-class disks and a 10 GbE fabric as a
// JSON ProfileSpec (the same format `dare-sim -profile-file` accepts),
// builds it, and asks the question §II-B poses: with disks this fast, does
// data locality — and hence DARE — still matter?
//
// The answer plays out both sides of the §II debate. With a 10 GbE fabric
// against NVMe disks the tasks are CPU-bound and DARE still multiplies
// locality but buys no turnaround time — that is Ananthanarayanan et
// al.'s HotOS'11 "disk-locality considered irrelevant" position, which
// the paper cites. Throttle the fabric to a heavily shared sliver (the
// condition §II-B argues is the reality of virtualized and oversubscribed
// clusters) and the turnaround gains reappear.
//
// Run with: go run ./examples/customcluster
package main

import (
	"fmt"
	"log"
	"strings"

	"dare"
)

const nvmeCluster = `{
  "name": "nvme40",
  "kind": "dedicated",
  "slaves": 40,
  "mapSlotsPerNode": 2,
  "reduceSlotsPerNode": 2,
  "blockSizeMB": 128,
  "replicationFactor": 3,
  "diskBW": {"type": "normal", "mean": 2000, "sd": 150, "min": 1500, "max": 2500},
  "netBW": {"type": "normal", "mean": 1150, "sd": 50, "min": 1000, "max": 1250},
  "rtt": {"type": "constant", "value": 0.00005},
  "rackSize": 20,
  "heartbeatInterval": 0.25
}`

func main() {
	const seed = 42
	profile, err := dare.LoadProfile(strings.NewReader(nvmeCluster))
	if err != nil {
		log.Fatal(err)
	}
	ratio := dare.BandwidthRatio(profile, 200, seed)
	fmt.Printf("custom cluster %q: %d slaves, net/disk bandwidth ratio %.0f%%\n\n",
		profile.Name, profile.Slaves, ratio*100)

	fmt.Printf("%-28s %9s %9s %10s\n", "configuration", "locality", "GMTT(s)", "gmtt-norm")
	run := func(label string, p *dare.Profile, kind dare.PolicyKind, vanillaGMTT *float64) {
		wl := dare.WL1(seed)
		out, err := dare.Run(dare.Options{
			Profile:   p,
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    dare.PolicyFor(kind),
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		norm := 1.0
		if kind == dare.Vanilla {
			*vanillaGMTT = out.Summary.GMTT
		} else if *vanillaGMTT > 0 {
			norm = out.Summary.GMTT / *vanillaGMTT
		}
		fmt.Printf("%-28s %9.3f %9.2f %10.3f\n", label, out.Summary.JobLocality, out.Summary.GMTT, norm)
	}

	var base float64
	run("nvme40 vanilla", profile, dare.Vanilla, &base)
	run("nvme40 + DARE", profile, dare.ElephantTrap, &base)

	// Same cluster with a heavily shared fabric: each flow sees a sliver
	// of the NIC rate (oversubscription plus neighbours).
	congested, err := dare.LoadProfile(strings.NewReader(strings.Replace(nvmeCluster,
		`"netBW": {"type": "normal", "mean": 1150, "sd": 50, "min": 1000, "max": 1250}`,
		`"netBW": {"type": "normal", "mean": 60, "sd": 20, "min": 20, "max": 120}`, 1)))
	if err != nil {
		log.Fatal(err)
	}
	congested.Name = "nvme40-congested"
	fmt.Println()
	ratio2 := dare.BandwidthRatio(congested, 200, seed)
	fmt.Printf("same cluster, oversubscribed fabric: net/disk ratio %.0f%%\n\n", ratio2*100)
	var base2 float64
	run("congested vanilla", congested, dare.Vanilla, &base2)
	run("congested + DARE", congested, dare.ElephantTrap, &base2)

	fmt.Println()
	fmt.Println("Fast fabric: locality triples but GMTT is flat — the HotOS'11")
	fmt.Println("\"disk-locality irrelevant\" regime. Shared fabric: the same replicas")
	fmt.Println("now buy real turnaround time — the paper's §II-B counterargument.")
	fmt.Println("DARE's network-traffic reduction applies in both regimes.")
}
