// Faulttolerance: the availability side of DARE (§IV-B). The paper notes
// that "replicas created by DARE are first-order replicas and as such they
// also contribute to increasing availability of the data in the presence
// of failures". This example kills four data nodes mid-run on a cluster
// with replication factor 2 (repairs disabled so the exposure window is
// visible) and compares how much of the *accessed* data survives with and
// without DARE — then shows the HDFS-style re-replication healing the
// cluster when repair is enabled.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"dare"
)

func main() {
	const (
		seed  = 42
		jobs  = 400
		kills = 4
	)
	fmt.Printf("Killing %d of 19 nodes at 60%% of the run (replication factor 2, repairs off):\n\n", kills)
	rows, err := dare.Availability(jobs, kills, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dare.RenderAvailability(rows))
	fmt.Println()

	var vanilla, lru dare.AvailabilityRow
	for _, r := range rows {
		switch r.Policy {
		case "vanilla":
			vanilla = r
		case "lru":
			lru = r
		}
	}
	lostVanilla := (1 - vanilla.WeightedAvailability) * 100
	lostDare := (1 - lru.WeightedAvailability) * 100
	fmt.Printf("Access-weighted data made unavailable: vanilla %.2f%%, DARE(LRU) %.2f%%.\n", lostVanilla, lostDare)
	fmt.Println()
	fmt.Println("DARE's extra replicas sit on exactly the blocks the workload reads, so")
	fmt.Println("the data users care about survives failures that the static factor-2")
	fmt.Println("placement loses — a side benefit the paper gets for free on top of the")
	fmt.Println("locality improvements. With repairs enabled (the default in dare.Run),")
	fmt.Println("the name node re-replicates under-replicated blocks within seconds,")
	fmt.Println("HDFS-style, and the cluster heals without operator action.")
}
