// Hotspot: the scenario the paper's introduction motivates — a single
// popular dataset hammered by a burst of concurrent analysis jobs (§I's
// "replica allocation problem"). With the static replication factor of 3,
// the three nodes holding the hot file become a bottleneck; DARE detects
// the hotspot from the remote reads it causes and spreads replicas across
// the cluster while the burst is still running.
//
// The example builds a custom workload: 150 jobs, 90% of which scan the
// same hot file, arriving in tight bursts. It then compares vanilla Hadoop
// against DARE and reports locality over time (per quartile of the job
// stream), showing DARE converging within the burst.
//
// Run with: go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	"dare"
)

func main() {
	const seed = 7
	// A tiny file population with one extremely hot file: rank-1
	// probability under Zipf s=3 over 10 files is ~0.83.
	wl := dare.GenerateWorkload(dare.WorkloadConfig{
		Name:             "hotspot",
		NumJobs:          150,
		NumFiles:         10,
		ZipfS:            3.0,
		MeanInterarrival: 0.15,
		FileRepeatProb:   0.6, // bursts of analyses over the same data
		Seed:             seed,
	})
	counts := wl.AccessCounts()
	hot, hotCount := 0, 0
	for i, c := range counts {
		if c > hotCount {
			hot, hotCount = i, c
		}
	}
	fmt.Printf("hotspot workload: %d jobs over %d files; hottest file %q takes %d/%d jobs\n\n",
		len(wl.Jobs), len(wl.Files), wl.Files[hot].Name, hotCount, len(wl.Jobs))

	fmt.Printf("%-14s %9s  %-28s %11s\n", "policy", "locality", "locality by quartile", "blocks/job")
	for _, kind := range []dare.PolicyKind{dare.Vanilla, dare.ElephantTrap} {
		out, err := dare.Run(dare.Options{
			Profile:   dare.CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    dare.PolicyFor(kind),
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Locality per quartile of the job stream: convergence visible as
		// a rising sequence under DARE.
		var q [4]float64
		var n [4]int
		for i, r := range out.Results {
			b := i * 4 / len(out.Results)
			q[b] += r.Locality()
			n[b]++
		}
		quartiles := ""
		for b := 0; b < 4; b++ {
			quartiles += fmt.Sprintf("%.2f ", q[b]/float64(n[b]))
		}
		fmt.Printf("%-14s %9.3f  %-28s %11.2f\n", kind, out.Summary.JobLocality, quartiles, out.Summary.BlocksPerJob)
	}

	fmt.Println()
	fmt.Println("Under vanilla Hadoop the hot file stays on its 3 static replica nodes")
	fmt.Println("for the whole burst; with DARE each remote read is an opportunity to")
	fmt.Println("spread it, so locality climbs quartile by quartile as the hotspot is")
	fmt.Println("absorbed — the adaptive behaviour Scarlett's fixed epochs cannot give.")
}
