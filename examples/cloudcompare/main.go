// Cloudcompare: §II-B's motivating comparison between a dedicated cluster
// and a virtualized public-cloud allocation. The example first reproduces
// the environment measurements (Table I ping RTTs, Table II bandwidths,
// Fig. 1 hop counts), then replays the same workload on both profiles to
// show the paper's §V-E finding: the lower the network/disk bandwidth
// ratio, the more data locality — and hence DARE — pays off.
//
// Run with: go run ./examples/cloudcompare
package main

import (
	"fmt"
	"log"

	"dare"
)

func main() {
	const seed = 42
	cct, ec2 := dare.CCT(), dare.EC2()

	fmt.Println("=== Environment characterization (§II-B) ===")
	fmt.Println()
	fmt.Println("All-to-all ping RTTs (Table I):")
	fmt.Println(dare.TableI(5, seed, cct, dare.EC2Small()))
	fmt.Println("Disk and network bandwidth (Table II):")
	fmt.Println(dare.TableII(50, seed, cct, ec2))
	rc := dare.BandwidthRatio(cct, 200, seed)
	re := dare.BandwidthRatio(ec2, 200, seed)
	fmt.Printf("net/disk bandwidth ratio: CCT %.1f%%, EC2 %.1f%%\n", rc*100, re*100)
	fmt.Println("(paper: 74.6% vs 51.75% — remote reads hurt more in the cloud)")
	fmt.Println()
	fmt.Println("Hop-count distribution of a 20-node EC2 allocation (Fig. 1):")
	fmt.Println(dare.Fig1(dare.EC2Small(), seed))

	fmt.Println("=== Same workload, both clusters (Fig. 7 vs Fig. 10) ===")
	fmt.Println()
	fmt.Printf("%-8s %-14s %9s %10s %10s\n", "cluster", "policy", "locality", "gmtt-norm", "slowdown")
	for _, profile := range []*dare.Profile{cct, ec2} {
		wl := dare.WL1(seed)
		if profile.Kind == ec2.Kind {
			// SWIM's scaling rule: compress arrivals by the slot ratio so
			// the larger cluster sees the same per-slot load.
			factor := float64(cct.Slaves*cct.MapSlotsPerNode) / float64(profile.Slaves*profile.MapSlotsPerNode)
			wl = wl.ScaleArrivals(factor)
		}
		var vanillaGMTT float64
		for _, kind := range []dare.PolicyKind{dare.Vanilla, dare.ElephantTrap} {
			out, err := dare.Run(dare.Options{
				Profile:   profile,
				Workload:  wl,
				Scheduler: "fair",
				Policy:    dare.PolicyFor(kind),
				Seed:      seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			if kind == dare.Vanilla {
				vanillaGMTT = out.Summary.GMTT
			}
			fmt.Printf("%-8s %-14s %9.3f %10.3f %10.2f\n",
				profile.Name, kind, out.Summary.JobLocality, out.Summary.GMTT/vanillaGMTT, out.Summary.MeanSlowdown)
		}
	}
	fmt.Println()
	fmt.Println("The virtualized cluster starts from a much lower locality baseline (3")
	fmt.Println("replicas across 99 nodes) and pays more for each remote read, so the")
	fmt.Println("same replication mechanism buys a larger relative improvement there.")
}
