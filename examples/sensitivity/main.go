// Sensitivity: the §V-D parameter study in miniature. Sweeps the
// ElephantTrap sampling probability p and the replication budget on wl2
// and prints the locality / replication-activity trade-off curves of
// Figs. 8 and 9, then points at the paper's recommended operating point
// (p ~ 0.2-0.3, budget ~ 0.1-0.2).
//
// Run with: go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"

	"dare"
)

func main() {
	const (
		seed = 42
		jobs = 300 // scaled-down runs keep the example snappy
	)

	fmt.Println("=== Sensitivity to the sampling probability p (Fig. 8a) ===")
	fmt.Printf("%6s %18s %18s\n", "p", "locality (fifo)", "blocks/job (fifo)")
	for _, p := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
		out := run(seed, jobs, dare.PolicyConfig{
			Kind: dare.ElephantTrap, P: p, Threshold: 1, BudgetFraction: 0.2,
		})
		fmt.Printf("%6.1f %18.3f %18.2f\n", p, out.Summary.JobLocality, out.Summary.BlocksPerJob)
	}
	fmt.Println()
	fmt.Println("Locality rises steeply up to p ~ 0.2-0.3 then flattens, while the")
	fmt.Println("replication (disk-write) cost keeps growing — hence the paper's")
	fmt.Println("recommendation of p between 0.2 and 0.3.")
	fmt.Println()

	fmt.Println("=== Sensitivity to the replication budget (Fig. 9a, greedy LRU) ===")
	fmt.Printf("%8s %18s %18s\n", "budget", "locality (fifo)", "blocks/job (fifo)")
	for _, b := range []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5} {
		out := run(seed, jobs, dare.PolicyConfig{Kind: dare.GreedyLRU, BudgetFraction: b})
		fmt.Printf("%8.2f %18.3f %18.2f\n", b, out.Summary.JobLocality, out.Summary.BlocksPerJob)
	}
	fmt.Println()
	fmt.Println("Even small budgets capture most of the benefit: the heavy-tailed access")
	fmt.Println("pattern means a handful of hot blocks per node covers most reads. Tiny")
	fmt.Println("budgets pay extra disk writes instead (evict-then-recreate thrash).")
}

func run(seed uint64, jobs int, policy dare.PolicyConfig) *dare.Output {
	wl := dare.WL2(seed)
	wl.Jobs = wl.Jobs[:jobs]
	out, err := dare.Run(dare.Options{
		Profile:   dare.CCT(),
		Workload:  wl,
		Scheduler: "fifo",
		Policy:    policy,
		Seed:      seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return out
}
